//! Socket send and receive buffers.
//!
//! Buffers work in 64-bit *stream offsets* (bytes since connection start);
//! the socket maps these to wire sequence numbers. This keeps buffer logic
//! free of 32-bit wrap concerns, exactly like the kernel's separation of
//! `skb` byte queues from sequence arithmetic.
//!
//! Both buffers carry *message boundaries* — stream offsets at which an
//! application `send` call (or an explicit hint) ended — so the instrumented
//! queues can count in message units as well as bytes (paper §3.3).
//!
//! Internally both halves store [`Payload`] chunks rather than flat byte
//! deques: one application message is one chunk, and segmenting it into
//! MSS-sized transmissions is O(1) [`Payload::slice`] sub-views per
//! segment instead of a per-segment byte copy. At the paper's 16 KiB SET
//! workload this removes two full-message copies per request from the
//! simulator's hot path; bytes only get copied when a chunk is first
//! pushed, when a transmission or read genuinely spans chunks, and when
//! the application drains a multi-segment read into one contiguous view.

use std::collections::{BTreeMap, VecDeque};

use crate::payload::Payload;

/// Gathers stream bytes `[from, from + n)` out of a contiguous chunk list
/// (each entry is `(start_offset, bytes)`). A range inside one chunk is an
/// O(1) sub-view; a spanning range concatenates slice-wise (`memcpy`).
// hot-path: runs per emitted segment and per application read
fn gather(chunks: &VecDeque<(u64, Payload)>, from: u64, n: usize) -> Payload {
    if n == 0 {
        return Payload::new();
    }
    let end = from + n as u64;
    // First chunk overlapping `from`: chunks are sorted and contiguous, so
    // binary-search the start offsets.
    let first = chunks.partition_point(|&(start, ref p)| start + p.len() as u64 <= from);
    let (start, p) = &chunks[first];
    let skip = (from - start) as usize;
    if start + p.len() as u64 >= end {
        return p.slice(skip, skip + n);
    }
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&p[skip..]);
    for (_, p) in chunks.iter().skip(first + 1) {
        let take = (n - out.len()).min(p.len());
        out.extend_from_slice(&p[..take]);
        if out.len() == n {
            break;
        }
    }
    debug_assert_eq!(out.len(), n, "gather ran past the chunk list");
    out.into()
}

/// The sending half: bytes accepted from the application, split into
/// unacknowledged (`una..nxt`) and unsent (`nxt..end`) regions.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    /// First unacknowledged stream offset.
    una: u64,
    /// Next stream offset to transmit.
    nxt: u64,
    /// End of buffered data.
    end: u64,
    /// Buffered chunks covering `[una, end)` (the front chunk may extend
    /// below `una` until it is fully acknowledged), sorted and contiguous.
    chunks: VecDeque<(u64, Payload)>,
    /// Capacity limit on `end − una`.
    capacity: usize,
    /// Message-end offsets not yet fully acknowledged.
    boundaries: VecDeque<u64>,
}

impl SendBuffer {
    /// Creates an empty buffer with the given byte capacity.
    pub fn new(capacity: usize) -> Self {
        SendBuffer {
            una: 0,
            nxt: 0,
            end: 0,
            chunks: VecDeque::new(),
            capacity,
            boundaries: VecDeque::new(),
        }
    }

    /// Appends as much of `bytes` as capacity allows; returns the number of
    /// bytes accepted. The accepted prefix is copied once into a fresh
    /// chunk; all later segmentation of it is copy-free sub-views.
    pub fn push(&mut self, bytes: &[u8]) -> usize {
        let room = self.capacity.saturating_sub((self.end - self.una) as usize);
        let n = bytes.len().min(room);
        if n > 0 {
            self.chunks
                .push_back((self.end, Payload::copy_from_slice(&bytes[..n])));
            self.end += n as u64;
        }
        n
    }

    /// Records that an application message ends at the current write
    /// position. No-op if no data is buffered at all (a zero-length send).
    pub fn mark_boundary(&mut self) {
        if self.boundaries.back() != Some(&self.end) && self.end > self.una {
            self.boundaries.push_back(self.end);
        }
    }

    /// First unacknowledged offset.
    pub fn una(&self) -> u64 {
        self.una
    }

    /// Next offset to send.
    pub fn nxt(&self) -> u64 {
        self.nxt
    }

    /// End of buffered data.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Bytes buffered but not yet transmitted.
    pub fn unsent(&self) -> usize {
        (self.end - self.nxt) as usize
    }

    /// Bytes transmitted but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        (self.nxt - self.una) as usize
    }

    /// Total buffered bytes (`sk_wmem_queued` analogue).
    pub fn buffered(&self) -> usize {
        (self.end - self.una) as usize
    }

    /// Remaining capacity for `push`.
    pub fn room(&self) -> usize {
        self.capacity.saturating_sub(self.buffered())
    }

    /// Views the next up-to-`max` unsent bytes (without consuming)
    /// together with the message boundaries they contain, and advances
    /// `nxt`. Returns `None` when nothing is unsent or `max == 0`.
    // hot-path: runs per emitted segment; copy-free within one chunk
    pub fn take_chunk(&mut self, max: usize) -> Option<SendChunk> {
        let n = self.unsent().min(max);
        if n == 0 {
            return None;
        }
        let start = self.nxt;
        let bytes = gather(&self.chunks, start, n);
        self.nxt += n as u64;
        let boundaries: Vec<u64> = self
            .boundaries
            .iter()
            .copied()
            .filter(|&b| b > start && b <= self.nxt)
            .collect();
        Some(SendChunk {
            offset: start,
            bytes,
            boundaries,
        })
    }

    /// Re-reads already-transmitted bytes `[offset, offset+len)` for
    /// retransmission (they remain buffered until acknowledged).
    ///
    /// # Panics
    ///
    /// Panics if the range is not fully within `[una, nxt)`.
    pub fn retransmit_chunk(&self, offset: u64, len: usize) -> SendChunk {
        assert!(
            offset >= self.una && offset + len as u64 <= self.nxt,
            "retransmit range [{offset}, +{len}) outside [{}, {})",
            self.una,
            self.nxt
        );
        let bytes = gather(&self.chunks, offset, len);
        let end = offset + len as u64;
        let boundaries: Vec<u64> = self
            .boundaries
            .iter()
            .copied()
            .filter(|&b| b > offset && b <= end)
            .collect();
        SendChunk {
            offset,
            bytes,
            boundaries,
        }
    }

    /// Processes a cumulative acknowledgment up to stream offset `upto`.
    /// Returns the freed byte count and the number of whole messages that
    /// became fully acknowledged.
    // hot-path: runs per received ACK; frees whole chunks, never copies
    pub fn on_ack(&mut self, upto: u64) -> AckResult {
        let upto = upto.min(self.end);
        if upto <= self.una {
            return AckResult {
                bytes: 0,
                messages: 0,
            };
        }
        let n = (upto - self.una) as usize;
        // A partially acknowledged front chunk stays whole until its last
        // byte is covered; the stream offsets keep `gather` exact either
        // way, this only delays freeing its memory slightly.
        while self
            .chunks
            .front()
            .is_some_and(|&(start, ref p)| start + p.len() as u64 <= upto)
        {
            self.chunks.pop_front();
        }
        self.una = upto;
        if self.nxt < self.una {
            self.nxt = self.una;
        }
        let mut messages = 0;
        while self.boundaries.front().is_some_and(|&b| b <= upto) {
            self.boundaries.pop_front();
            messages += 1;
        }
        AckResult { bytes: n, messages }
    }

    /// Rewinds the send pointer to the first unacknowledged byte (go-back-N
    /// after an RTO).
    pub fn rewind_to_una(&mut self) {
        self.nxt = self.una;
    }
}

/// A chunk of stream data handed to the transmit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendChunk {
    /// Stream offset of the first byte.
    pub offset: u64,
    /// The payload.
    pub bytes: Payload,
    /// Message-end offsets within `(offset, offset + len]`.
    pub boundaries: Vec<u64>,
}

/// Result of processing a cumulative ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckResult {
    /// Bytes newly acknowledged.
    pub bytes: usize,
    /// Whole application messages newly acknowledged.
    pub messages: usize,
}

/// The receiving half: in-order reassembly plus an out-of-order store.
#[derive(Debug, Clone)]
pub struct RecvBuffer {
    /// Next expected stream offset (`rcv_nxt` analogue).
    rcv_nxt: u64,
    /// Offset of the first unread byte (`copied_seq` analogue).
    read_pos: u64,
    /// In-order unread chunks from `read_pos` to `rcv_nxt` (views into
    /// the delivered segments; no reassembly copy).
    ready: VecDeque<Payload>,
    /// Total bytes across `ready`.
    ready_len: usize,
    /// Out-of-order segments keyed by start offset.
    ooo: BTreeMap<u64, Payload>,
    /// Message-end offsets within in-order data, not yet consumed.
    boundaries: VecDeque<u64>,
    /// Out-of-order message-end offsets waiting for in-order delivery.
    ooo_boundaries: BTreeMap<u64, ()>,
    capacity: usize,
}

/// Result of ingesting one data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestResult {
    /// Bytes that became in-order available (0 for pure out-of-order).
    pub in_order_bytes: usize,
    /// Whole messages that became in-order available.
    pub in_order_messages: usize,
    /// True if the segment was entirely duplicate data.
    pub duplicate: bool,
    /// True if the segment landed out of order.
    pub out_of_order: bool,
}

impl RecvBuffer {
    /// Creates an empty receive buffer with the given capacity.
    pub fn new(capacity: usize) -> Self {
        RecvBuffer {
            rcv_nxt: 0,
            read_pos: 0,
            ready: VecDeque::new(),
            ready_len: 0,
            ooo: BTreeMap::new(),
            boundaries: VecDeque::new(),
            ooo_boundaries: BTreeMap::new(),
            capacity,
        }
    }

    /// Next expected offset.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Offset of the first unread byte.
    pub fn read_pos(&self) -> u64 {
        self.read_pos
    }

    /// Bytes available for the application to read (`sk_rmem_alloc`
    /// analogue, ignoring out-of-order data).
    pub fn available(&self) -> usize {
        self.ready_len
    }

    /// Whole messages available to read.
    pub fn available_messages(&self) -> usize {
        self.boundaries.len()
    }

    /// Receive window to advertise.
    pub fn window(&self) -> usize {
        self.capacity.saturating_sub(self.ready_len)
    }

    fn push_ready(&mut self, view: Payload) {
        self.ready_len += view.len();
        self.ready.push_back(view);
    }

    /// Ingests a segment at stream offset `offset` carrying `data` and the
    /// message boundaries ending within it. In-order data is retained as a
    /// copy-free view of the segment's payload.
    // hot-path: runs per delivered data segment
    pub fn ingest(&mut self, offset: u64, data: &Payload, boundaries: &[u64]) -> IngestResult {
        let end = offset + data.len() as u64;
        for &b in boundaries {
            debug_assert!(b > offset && b <= end, "boundary {b} outside segment");
            if b > self.rcv_nxt {
                self.ooo_boundaries.insert(b, ());
            }
        }
        if end <= self.rcv_nxt {
            return IngestResult {
                duplicate: true,
                ..IngestResult::default()
            };
        }
        if offset > self.rcv_nxt {
            // Out of order: stash (trimming handled at assembly).
            self.ooo.insert(offset, data.clone());
            return IngestResult {
                out_of_order: true,
                ..IngestResult::default()
            };
        }
        let rcv_nxt_before = self.rcv_nxt;
        // Overlapping or exactly in order: take the new suffix.
        let skip = (self.rcv_nxt - offset) as usize;
        self.push_ready(data.slice(skip, data.len()));
        self.rcv_nxt = end;
        // Pull in any out-of-order data that is now contiguous.
        while let Some((&start, _)) = self.ooo.first_key_value() {
            if start > self.rcv_nxt {
                break;
            }
            let (start, seg) = self.ooo.pop_first().expect("checked non-empty");
            let seg_end = start + seg.len() as u64;
            if seg_end <= self.rcv_nxt {
                continue; // fully duplicate
            }
            let skip = (self.rcv_nxt - start) as usize;
            self.push_ready(seg.slice(skip, seg.len()));
            self.rcv_nxt = seg_end;
        }
        // Promote boundaries that are now in order.
        let mut in_order_messages = 0;
        loop {
            match self.ooo_boundaries.first_key_value() {
                Some((&b, _)) if b <= self.rcv_nxt => {
                    self.ooo_boundaries.pop_first();
                    self.boundaries.push_back(b);
                    in_order_messages += 1;
                }
                _ => break,
            }
        }
        IngestResult {
            in_order_bytes: (self.rcv_nxt - rcv_nxt_before) as usize,
            in_order_messages,
            duplicate: false,
            out_of_order: false,
        }
    }

    /// Reads up to `max` in-order bytes; returns the bytes and the number
    /// of whole messages consumed. A read served entirely by one chunk is
    /// copy-free; a multi-chunk read concatenates once.
    // hot-path: runs per application recv
    pub fn read(&mut self, max: usize) -> (Payload, usize) {
        let n = self.ready_len.min(max);
        let bytes = self.take_ready(n);
        self.read_pos += n as u64;
        let mut messages = 0;
        while self.boundaries.front().is_some_and(|&b| b <= self.read_pos) {
            self.boundaries.pop_front();
            messages += 1;
        }
        (bytes, messages)
    }

    /// Removes and returns the first `n` ready bytes.
    fn take_ready(&mut self, n: usize) -> Payload {
        if n == 0 {
            return Payload::new();
        }
        self.ready_len -= n;
        let front = self.ready.front().expect("n > 0 implies a ready chunk");
        if front.len() > n {
            // Split the front chunk: both halves are O(1) views.
            let head = front.slice(0, n);
            let rest = front.slice(n, front.len());
            self.ready[0] = rest;
            return head;
        }
        if front.len() == n {
            return self.ready.pop_front().expect("front exists");
        }
        // Spans several chunks: concatenate once.
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let chunk = self.ready.pop_front().expect("ready covers n bytes");
            let take = (n - out.len()).min(chunk.len());
            out.extend_from_slice(&chunk[..take]);
            if take < chunk.len() {
                let rest = chunk.slice(take, chunk.len());
                self.ready.push_front(rest);
            }
        }
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_push_respects_capacity() {
        let mut b = SendBuffer::new(10);
        assert_eq!(b.push(b"hello"), 5);
        assert_eq!(b.push(b"worldxxx"), 5);
        assert_eq!(b.push(b"y"), 0);
        assert_eq!(b.buffered(), 10);
        assert_eq!(b.room(), 0);
    }

    #[test]
    fn send_chunks_advance_nxt() {
        let mut b = SendBuffer::new(100);
        b.push(b"abcdefgh");
        let c1 = b.take_chunk(3).unwrap();
        assert_eq!(&c1.bytes[..], b"abc");
        assert_eq!(c1.offset, 0);
        let c2 = b.take_chunk(100).unwrap();
        assert_eq!(&c2.bytes[..], b"defgh");
        assert_eq!(c2.offset, 3);
        assert!(b.take_chunk(10).is_none());
        assert_eq!(b.in_flight(), 8);
    }

    #[test]
    fn send_chunk_within_one_push_is_a_view() {
        let mut b = SendBuffer::new(100);
        b.push(b"abcdefgh");
        let base = b.take_chunk(3).unwrap();
        let more = b.take_chunk(3).unwrap();
        // Same backing allocation: slicing, not copying.
        assert!(std::ptr::eq(
            base.bytes.as_ref().as_ptr().wrapping_add(3),
            more.bytes.as_ref().as_ptr()
        ));
    }

    #[test]
    fn send_chunk_spanning_pushes_concatenates() {
        let mut b = SendBuffer::new(100);
        b.push(b"abc");
        b.push(b"def");
        b.push(b"ghi");
        let c = b.take_chunk(8).unwrap();
        assert_eq!(&c.bytes[..], b"abcdefgh");
        let rest = b.take_chunk(8).unwrap();
        assert_eq!(&rest.bytes[..], b"i");
    }

    #[test]
    fn send_boundaries_ride_chunks() {
        let mut b = SendBuffer::new(100);
        b.push(b"req1");
        b.mark_boundary();
        b.push(b"req2!");
        b.mark_boundary();
        let c = b.take_chunk(6).unwrap();
        assert_eq!(c.boundaries, vec![4]);
        let c2 = b.take_chunk(10).unwrap();
        assert_eq!(c2.boundaries, vec![9]);
    }

    #[test]
    fn ack_frees_bytes_and_messages() {
        let mut b = SendBuffer::new(100);
        b.push(b"req1");
        b.mark_boundary();
        b.push(b"req2");
        b.mark_boundary();
        b.take_chunk(100);
        let r = b.on_ack(4);
        assert_eq!(
            r,
            AckResult {
                bytes: 4,
                messages: 1
            }
        );
        assert_eq!(b.buffered(), 4);
        // Duplicate ack is a no-op.
        let r2 = b.on_ack(4);
        assert_eq!(r2.bytes, 0);
        let r3 = b.on_ack(8);
        assert_eq!(r3.messages, 1);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn partial_ack_keeps_retransmit_exact() {
        let mut b = SendBuffer::new(100);
        b.push(b"abcdef");
        b.take_chunk(6);
        // Ack into the middle of the (single) chunk: the chunk stays, and
        // both retransmit and further acks stay offset-exact.
        b.on_ack(2);
        let c = b.retransmit_chunk(2, 4);
        assert_eq!(&c.bytes[..], b"cdef");
        let r = b.on_ack(6);
        assert_eq!(r.bytes, 4);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn retransmit_rereads_unacked_range() {
        let mut b = SendBuffer::new(100);
        b.push(b"abcdef");
        b.take_chunk(6);
        let c = b.retransmit_chunk(2, 3);
        assert_eq!(&c.bytes[..], b"cde");
        assert_eq!(c.offset, 2);
    }

    #[test]
    fn rewind_resends_everything_unacked() {
        let mut b = SendBuffer::new(100);
        b.push(b"abcdef");
        b.take_chunk(6);
        b.on_ack(2);
        b.rewind_to_una();
        let c = b.take_chunk(100).unwrap();
        assert_eq!(c.offset, 2);
        assert_eq!(&c.bytes[..], b"cdef");
    }

    #[test]
    #[should_panic(expected = "retransmit range")]
    fn retransmit_outside_window_panics() {
        let b = SendBuffer::new(100);
        let _ = b.retransmit_chunk(0, 1);
    }

    #[test]
    fn recv_in_order_delivery() {
        let mut r = RecvBuffer::new(100);
        let res = r.ingest(0, &Payload::from_static(b"hello"), &[5]);
        assert_eq!(res.in_order_bytes, 5);
        assert_eq!(res.in_order_messages, 1);
        assert_eq!(r.available(), 5);
        let (bytes, msgs) = r.read(100);
        assert_eq!(&bytes[..], b"hello");
        assert_eq!(msgs, 1);
    }

    #[test]
    fn recv_single_segment_read_is_a_view() {
        let mut r = RecvBuffer::new(100);
        let seg = Payload::from_static(b"hello");
        r.ingest(0, &seg, &[5]);
        let (bytes, _) = r.read(100);
        assert!(std::ptr::eq(seg.as_ref().as_ptr(), bytes.as_ref().as_ptr()));
    }

    #[test]
    fn recv_out_of_order_reassembly() {
        let mut r = RecvBuffer::new(100);
        let res1 = r.ingest(5, &Payload::from_static(b"world"), &[10]);
        assert!(res1.out_of_order);
        assert_eq!(r.available(), 0);
        let res2 = r.ingest(0, &Payload::from_static(b"hello"), &[]);
        assert_eq!(res2.in_order_bytes, 10);
        assert_eq!(res2.in_order_messages, 1);
        let (bytes, _) = r.read(100);
        assert_eq!(&bytes[..], b"helloworld");
    }

    #[test]
    fn recv_duplicate_detected() {
        let mut r = RecvBuffer::new(100);
        r.ingest(0, &Payload::from_static(b"abc"), &[]);
        let res = r.ingest(0, &Payload::from_static(b"abc"), &[]);
        assert!(res.duplicate);
        assert_eq!(r.available(), 3);
    }

    #[test]
    fn recv_partial_overlap_takes_suffix() {
        let mut r = RecvBuffer::new(100);
        r.ingest(0, &Payload::from_static(b"abc"), &[]);
        let res = r.ingest(1, &Payload::from_static(b"bcdef"), &[]);
        assert!(!res.duplicate);
        assert_eq!(r.rcv_nxt(), 6);
        let (bytes, _) = r.read(100);
        assert_eq!(&bytes[..], b"abcdef");
    }

    #[test]
    fn recv_partial_read_consumes_messages_lazily() {
        let mut r = RecvBuffer::new(100);
        r.ingest(0, &Payload::from_static(b"req1req2"), &[4, 8]);
        assert_eq!(r.available_messages(), 2);
        let (_, msgs) = r.read(3);
        assert_eq!(msgs, 0, "message 1 not fully consumed yet");
        let (_, msgs) = r.read(1);
        assert_eq!(msgs, 1);
        let (_, msgs) = r.read(100);
        assert_eq!(msgs, 1);
    }

    #[test]
    fn recv_partial_reads_split_chunks_exactly() {
        let mut r = RecvBuffer::new(100);
        r.ingest(0, &Payload::from_static(b"abcdefgh"), &[]);
        let (a, _) = r.read(3);
        assert_eq!(&a[..], b"abc");
        assert_eq!(r.available(), 5);
        let (b, _) = r.read(2);
        assert_eq!(&b[..], b"de");
        let (c, _) = r.read(100);
        assert_eq!(&c[..], b"fgh");
        assert_eq!(r.available(), 0);
    }

    #[test]
    fn recv_window_shrinks_with_unread_data() {
        let mut r = RecvBuffer::new(10);
        r.ingest(0, &Payload::from_static(b"abcde"), &[]);
        assert_eq!(r.window(), 5);
        r.read(5);
        assert_eq!(r.window(), 10);
    }

    #[test]
    fn ooo_chain_reassembles_fully() {
        let mut r = RecvBuffer::new(100);
        r.ingest(6, &Payload::from_static(b"ghi"), &[9]);
        r.ingest(3, &Payload::from_static(b"def"), &[]);
        let res = r.ingest(0, &Payload::from_static(b"abc"), &[]);
        assert_eq!(res.in_order_bytes, 9);
        assert_eq!(res.in_order_messages, 1);
        let (bytes, msgs) = r.read(100);
        assert_eq!(&bytes[..], b"abcdefghi");
        assert_eq!(msgs, 1);
    }
}
