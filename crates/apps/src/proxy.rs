//! The sharding proxy: the middle tier of the two-tier topology.
//!
//! A [`ProxyApp`] terminates every client TCP connection, parses RESP
//! commands, routes each by key over a consistent-hash [`ShardRouter`] to
//! one of K upstream shard connections (opened through the same simulated
//! stack with [`HostCtx::connect_to`]), and relays responses back to the
//! requesting client in FIFO order per shard — exactly the structure of a
//! Redis Cluster proxy or a memcached router like mcrouter.
//!
//! Because both legs are real [`tcpsim`] connections, every batching
//! mechanism under study runs twice per request, and the proxy is the
//! natural seat for the paper's estimation machinery: it sees the
//! client→proxy leg as an acceptor and the proxy→shard leg as an
//! initiator, composes the two per shard (see [`e2e_core::compose`]), and
//! can batch each upstream independently via a per-shard control plane
//! ([`ProxyDriver`]).

use std::collections::{BTreeMap, VecDeque};

use littles::Nanos;
use simnet::{Histogram, Pcg32};
use tcpsim::{App, HostCtx, HostId, SocketId, TcpConfig, WakeReason};

use crate::cost::AppCosts;
use crate::driver::ProxyDriver;
use crate::resp::{
    encode_get, encode_response, encode_set, Command, CommandParser, Response, ResponseParser,
};

const TOKEN_KIND_SHIFT: u32 = 32;
const KIND_PROCESS: u64 = 1;
const KIND_TICK: u64 = 2;
const KIND_FLUSH: u64 = 3;
const KIND_UP_PROCESS: u64 = 4;
const KIND_UP_FLUSH: u64 = 5;

fn token(kind: u64, idx: usize) -> u64 {
    (kind << TOKEN_KIND_SHIFT) | idx as u64
}

/// Virtual nodes per shard on the hash ring. Enough to spread each
/// shard's arcs well; small enough that ring construction stays trivial.
const VNODES: usize = 64;

/// FNV-1a over the key bytes, finished with a murmur-style avalanche.
/// Raw FNV-1a barely diffuses trailing-byte differences, and workload
/// keys differ only in their last digits — without the finalizer a small
/// key space lands in one arc of the ring and starves whole shards.
fn key_hash(key: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// Consistent-hash key → shard routing.
///
/// Each shard owns [`VNODES`] points on a 64-bit ring, placed by the
/// `"shard.salt"` named RNG stream (so ring layout depends only on the
/// seed, never on call order elsewhere); a key maps to the owner of the
/// first point at or clockwise of its hash. Adding or removing one shard
/// moves only the arcs adjacent to its points — the property that makes
/// the scheme *consistent*.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `(point, shard)` sorted by point.
    ring: Vec<(u64, usize)>,
    num_shards: usize,
}

impl ShardRouter {
    /// Builds a ring for `num_shards` shards from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero.
    pub fn new(num_shards: usize, seed: u64) -> Self {
        assert!(num_shards > 0, "router needs at least one shard");
        let mut rng = Pcg32::named(seed, "shard.salt");
        let mut ring: Vec<(u64, usize)> = (0..num_shards)
            .flat_map(|shard| (0..VNODES).map(move |v| (shard, v)))
            .map(|(shard, _)| (rng.next_u64(), shard))
            .collect();
        ring.sort_unstable();
        ring.dedup_by_key(|(p, _)| *p);
        ShardRouter { ring, num_shards }
    }

    /// Number of shards on the ring.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Routes a key to its shard.
    pub fn route(&self, key: &[u8]) -> usize {
        let h = key_hash(key);
        let idx = match self.ring.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => i,
            // Clockwise successor; past the last point wraps to the first.
            Err(i) => i % self.ring.len(),
        };
        self.ring[idx].1
    }
}

/// One client-facing connection's state.
struct ClientConn {
    parser: CommandParser,
    call_pending: bool,
    /// Responses (or tails) awaiting client-socket send-buffer space.
    out_backlog: VecDeque<Vec<u8>>,
    flush_pending: bool,
}

impl ClientConn {
    fn new() -> Self {
        ClientConn {
            parser: CommandParser::new(),
            call_pending: false,
            out_backlog: VecDeque::new(),
            flush_pending: false,
        }
    }
}

/// One upstream (proxy → shard) connection's state.
struct Upstream {
    sock: SocketId,
    connected: bool,
    parser: ResponseParser,
    call_pending: bool,
    /// Commands (or tails) awaiting upstream send-buffer space; also
    /// buffers everything issued before the handshake completes.
    out_backlog: VecDeque<Vec<u8>>,
    flush_pending: bool,
    /// Clients awaiting responses from this shard with the time their
    /// command was forwarded, in request order (RESP responses come back
    /// FIFO per connection).
    waiting: VecDeque<(SocketId, Nanos)>,
}

/// Per-run proxy statistics.
#[derive(Debug, Default, Clone)]
pub struct ProxyStats {
    /// Commands routed upstream.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub responses: u64,
    /// Per-shard command counts (who got the traffic).
    pub per_shard: Vec<u64>,
    /// Per-shard measured back-leg round trips (command forwarded →
    /// response parsed) — the ground truth the back-leg estimates chase.
    pub back_rtt: Vec<Histogram>,
}

/// The sharding proxy application.
pub struct ProxyApp {
    costs: AppCosts,
    upstream_config: TcpConfig,
    shard_hosts: Vec<HostId>,
    router: ShardRouter,
    tick_period: Nanos,
    conns: BTreeMap<usize, ClientConn>,
    /// Upstream state, indexed by shard.
    ups: Vec<Upstream>,
    /// Upstream socket → shard (the wake path's reverse map).
    up_by_sock: BTreeMap<usize, usize>,
    /// Optional per-shard estimation + control planes.
    pub driver: Option<ProxyDriver>,
    /// Aggregate statistics.
    pub stats: ProxyStats,
}

impl ProxyApp {
    /// Creates a proxy routing over `router` to the given shard hosts,
    /// opening each upstream with `upstream_config`.
    ///
    /// # Panics
    ///
    /// Panics when the router's shard count does not match the host list.
    pub fn new(
        costs: AppCosts,
        upstream_config: TcpConfig,
        shard_hosts: Vec<HostId>,
        router: ShardRouter,
    ) -> Self {
        assert_eq!(
            router.num_shards(),
            shard_hosts.len(),
            "one shard host per ring shard"
        );
        let shards = shard_hosts.len();
        ProxyApp {
            costs,
            upstream_config,
            shard_hosts,
            router,
            tick_period: Nanos::from_micros(500),
            conns: BTreeMap::new(),
            ups: Vec::new(),
            up_by_sock: BTreeMap::new(),
            driver: None,
            stats: ProxyStats {
                per_shard: vec![0; shards],
                back_rtt: vec![Histogram::new(); shards],
                ..ProxyStats::default()
            },
        }
    }

    /// Attaches the per-shard estimation/control driver.
    ///
    /// # Panics
    ///
    /// Panics when the driver's shard count does not match the proxy's.
    pub fn with_driver(mut self, driver: ProxyDriver) -> Self {
        assert_eq!(
            driver.num_shards(),
            self.shard_hosts.len(),
            "one driver plane per shard"
        );
        self.driver = Some(driver);
        self
    }

    /// The router (for key → shard audits).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The upstream socket serving a shard, once opened.
    pub fn upstream_sock(&self, shard: usize) -> Option<SocketId> {
        self.ups.get(shard).map(|u| u.sock)
    }

    /// Writes to a client socket, stashing what the send buffer rejects.
    fn send_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, wire: Vec<u8>) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        if conn.out_backlog.is_empty() {
            let sent = ctx.send(sock, &wire);
            if sent < wire.len() {
                let conn = self.conns.get_mut(&sock.0).expect("conn");
                conn.out_backlog.push_back(wire[sent..].to_vec());
            }
        } else {
            conn.out_backlog.push_back(wire);
        }
    }

    /// Writes to a shard's upstream, buffering while unconnected or
    /// backpressured.
    fn send_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize, wire: Vec<u8>) {
        let up = &mut self.ups[shard];
        if up.connected && up.out_backlog.is_empty() {
            let sock = up.sock;
            let sent = ctx.send(sock, &wire);
            if sent < wire.len() {
                self.ups[shard].out_backlog.push_back(wire[sent..].to_vec());
            }
        } else {
            up.out_backlog.push_back(wire);
        }
    }

    /// Drains a client socket's write backlog as far as the buffer allows.
    fn flush_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        conn.flush_pending = false;
        while let Some(front) = self
            .conns
            .get_mut(&sock.0)
            .expect("conn")
            .out_backlog
            .front_mut()
        {
            let sent = ctx.send(sock, front);
            let done = sent == front.len();
            let conn = self.conns.get_mut(&sock.0).expect("conn");
            let front = conn.out_backlog.front_mut().expect("non-empty");
            if !done {
                front.drain(..sent);
                break;
            }
            conn.out_backlog.pop_front();
        }
    }

    /// Drains a shard upstream's write backlog.
    fn flush_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.ups[shard].flush_pending = false;
        if !self.ups[shard].connected {
            return;
        }
        let sock = self.ups[shard].sock;
        while let Some(front) = self.ups[shard].out_backlog.front_mut() {
            let sent = ctx.send(sock, front);
            if sent < front.len() {
                front.drain(..sent);
                break;
            }
            self.ups[shard].out_backlog.pop_front();
        }
    }

    /// One processing pass over a client connection: read, route every
    /// complete command to its shard, remember who to answer.
    fn process_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        conn.call_pending = false;
        let (data, _msgs) = ctx.recv(sock, usize::MAX);
        let conn = self.conns.get_mut(&sock.0).expect("just inserted");
        conn.parser.feed(&data);
        while let Some(cmd) = self
            .conns
            .get_mut(&sock.0)
            .expect("conn")
            .parser
            .next_command()
        {
            let (wire, payload, shard) = match &cmd {
                Command::Set { key, value } => (
                    encode_set(key, value),
                    key.len() + value.len(),
                    self.router.route(key),
                ),
                Command::Get { key } => (encode_get(key), key.len(), self.router.route(key)),
            };
            ctx.charge_app(self.costs.proxy_forward(payload));
            self.ups[shard].waiting.push_back((sock, ctx.now()));
            self.send_upstream(ctx, shard, wire);
            self.stats.forwarded += 1;
            self.stats.per_shard[shard] += 1;
        }
    }

    /// One processing pass over a shard upstream: read, relay every
    /// complete response to the client that asked, FIFO.
    fn process_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.ups[shard].call_pending = false;
        let sock = self.ups[shard].sock;
        let (data, _msgs) = ctx.recv(sock, usize::MAX);
        self.ups[shard].parser.feed(&data);
        while let Some(resp) = self.ups[shard].parser.next_response() {
            let payload = match &resp {
                Response::Value(v) => v.len(),
                Response::Ok | Response::Nil => 0,
            };
            ctx.charge_app(self.costs.proxy_forward(payload));
            let (client, sent_at) = self.ups[shard]
                .waiting
                .pop_front()
                .expect("response without a waiting client");
            self.stats.back_rtt[shard].record(ctx.now() - sent_at);
            self.send_client(ctx, client, encode_response(&resp));
            self.stats.responses += 1;
        }
    }

    fn tick(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some(mut driver) = self.driver.take() {
            // Sorted client order (BTreeMap) keeps the tick deterministic.
            let client_socks: Vec<SocketId> =
                self.conns.keys().map(|&s| SocketId(s)).collect();
            let upstreams: Vec<Option<SocketId>> = self
                .ups
                .iter()
                .map(|u| u.connected.then_some(u.sock))
                .collect();
            driver.tick(ctx, &client_socks, &upstreams);
            self.driver = Some(driver);
        }
        ctx.call_after(self.tick_period, token(KIND_TICK, 0));
    }
}

impl App for ProxyApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // One upstream per shard, opened through the simulated stack; the
        // socket id is known immediately, writes buffer until `Connected`.
        for (shard, &host) in self.shard_hosts.iter().enumerate() {
            let sock = ctx.connect_to(host, self.upstream_config);
            self.up_by_sock.insert(sock.0, shard);
            self.ups.push(Upstream {
                sock,
                connected: false,
                parser: ResponseParser::new(),
                call_pending: false,
                out_backlog: VecDeque::new(),
                flush_pending: false,
                waiting: VecDeque::new(),
            });
        }
        ctx.call_after(self.tick_period, token(KIND_TICK, 0));
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, reason: WakeReason) {
        // Upstream sockets are the ones the proxy opened; everything else
        // is a client-facing accept.
        let upstream = self.up_by_sock.get(&sock.0).copied();
        match reason {
            WakeReason::Connected => {
                if let Some(shard) = upstream {
                    self.ups[shard].connected = true;
                    if !self.ups[shard].out_backlog.is_empty() && !self.ups[shard].flush_pending {
                        self.ups[shard].flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_UP_FLUSH, shard));
                    }
                }
            }
            WakeReason::Accepted => {
                self.conns.insert(sock.0, ClientConn::new());
            }
            WakeReason::Readable => match upstream {
                Some(shard) => {
                    if !self.ups[shard].call_pending {
                        self.ups[shard].call_pending = true;
                        ctx.wake_app_thread(token(KIND_UP_PROCESS, shard));
                    }
                }
                None => {
                    let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
                    if !conn.call_pending {
                        conn.call_pending = true;
                        ctx.wake_app_thread(token(KIND_PROCESS, sock.0));
                    }
                }
            },
            WakeReason::Writable => match upstream {
                Some(shard) => {
                    if self.ups[shard].connected
                        && !self.ups[shard].out_backlog.is_empty()
                        && !self.ups[shard].flush_pending
                    {
                        self.ups[shard].flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_UP_FLUSH, shard));
                    }
                }
                None => {
                    let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
                    if !conn.out_backlog.is_empty() && !conn.flush_pending {
                        conn.flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_FLUSH, sock.0));
                    }
                }
            },
            _ => {}
        }
    }

    fn on_call(&mut self, ctx: &mut HostCtx<'_>, tok: u64) {
        let kind = tok >> TOKEN_KIND_SHIFT;
        let idx = (tok & 0xFFFF_FFFF) as usize;
        match kind {
            KIND_PROCESS => self.process_client(ctx, SocketId(idx)),
            KIND_FLUSH => self.flush_client(ctx, SocketId(idx)),
            KIND_UP_PROCESS => self.process_upstream(ctx, idx),
            KIND_UP_FLUSH => self.flush_upstream(ctx, idx),
            KIND_TICK => self.tick(ctx),
            other => panic!("unknown proxy token kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_deterministic_and_total() {
        let r1 = ShardRouter::new(4, 42);
        let r2 = ShardRouter::new(4, 42);
        for i in 0..1000 {
            let key = format!("key:{i:012}");
            let s = r1.route(key.as_bytes());
            assert_eq!(s, r2.route(key.as_bytes()));
            assert!(s < 4);
        }
    }

    #[test]
    fn router_spreads_keys_across_shards() {
        let r = ShardRouter::new(4, 7);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let key = format!("key:{i:012}");
            counts[r.route(key.as_bytes())] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > 400,
                "shard {shard} starved: {counts:?} — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn different_seeds_lay_out_different_rings() {
        let a = ShardRouter::new(4, 1);
        let b = ShardRouter::new(4, 2);
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("key:{i:012}");
                a.route(key.as_bytes()) != b.route(key.as_bytes())
            })
            .count();
        assert!(moved > 250, "only {moved} keys moved between seeds");
    }

    #[test]
    fn removing_a_shard_only_moves_its_keys() {
        // Consistency: keys on surviving shards of a 4-ring must map to
        // the same shard on the 3-ring built from the same seed whenever
        // their owning arc did not belong to the removed shard. With
        // independent ring points per shard count this is statistical:
        // far fewer keys move than a modulo scheme's ~75%.
        let four = ShardRouter::new(4, 9);
        let three = ShardRouter::new(3, 9);
        let moved = (0..2000)
            .filter(|i| {
                let key = format!("key:{i:012}");
                let s4 = four.route(key.as_bytes());
                s4 < 3 && three.route(key.as_bytes()) != s4
            })
            .count();
        assert!(moved < 700, "{moved}/2000 surviving keys moved");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_router_rejected() {
        let _ = ShardRouter::new(0, 1);
    }
}
