//! The sharding proxy: the middle tier of the two-tier topology.
//!
//! A [`ProxyApp`] terminates every client TCP connection, parses RESP
//! commands, routes each by key over a consistent-hash [`ShardRouter`] to
//! one of K upstream shard connections (opened through the same simulated
//! stack with [`HostCtx::connect_to`]), and relays responses back to the
//! requesting client in FIFO order per shard — exactly the structure of a
//! Redis Cluster proxy or a memcached router like mcrouter.
//!
//! Because both legs are real [`tcpsim`] connections, every batching
//! mechanism under study runs twice per request, and the proxy is the
//! natural seat for the paper's estimation machinery: it sees the
//! client→proxy leg as an acceptor and the proxy→shard leg as an
//! initiator, composes the two per shard (see [`e2e_core::compose`]), and
//! can batch each upstream independently via a per-shard control plane
//! ([`ProxyDriver`]).
//!
//! With a [`Resilience`] configuration attached, the proxy also survives
//! shard failure: every request is tagged with an id and tracked in a
//! pending table, attempts carry per-request deadlines, expired attempts
//! are retried under a token budget with backoff ([`RetryPolicy`]), late
//! attempts are hedged to the key's failover replica when the composed
//! estimate's P99 view says they should have finished, and a per-upstream
//! [`UpstreamBreaker`] — fed jointly by timeouts, resets, and composed
//! estimate confidence — redirects new traffic away from a dead shard.
//! Upstream connections that reset are torn down cleanly (in-flight
//! requests failed or retried, never mis-paired) and re-dialed with
//! backoff. Without a `Resilience` config the proxy is the naive build:
//! a reset upstream is simply forgotten and its requests are lost.

use std::collections::{BTreeMap, VecDeque};

use batchpolicy::{AttemptKind, BreakerConfig, RetryConfig, RetryPolicy, UpstreamBreaker};
use littles::Nanos;
use simnet::{Histogram, Pcg32};
use tcpsim::{App, HostCtx, HostId, SocketId, TcpConfig, WakeReason};

use crate::cost::AppCosts;
use crate::driver::ProxyDriver;
use crate::resp::{
    encode_get, encode_get_with_id, encode_response, encode_set, encode_set_with_id, Command,
    CommandParser, Response, ResponseParser,
};

const TOKEN_KIND_SHIFT: u32 = 32;
const KIND_PROCESS: u64 = 1;
const KIND_TICK: u64 = 2;
const KIND_FLUSH: u64 = 3;
const KIND_UP_PROCESS: u64 = 4;
const KIND_UP_FLUSH: u64 = 5;
/// Fire a scheduled retry; the index is the request id.
const KIND_RETRY: u64 = 6;
/// Re-dial a reset upstream; the index is the shard.
const KIND_RECONNECT: u64 = 7;
/// Deadline/hedge scan (resilient proxies only; idx unused).
const KIND_SCAN: u64 = 8;

fn token(kind: u64, idx: usize) -> u64 {
    (kind << TOKEN_KIND_SHIFT) | idx as u64
}

/// Virtual nodes per shard on the hash ring. Enough to spread each
/// shard's arcs well; small enough that ring construction stays trivial.
const VNODES: usize = 64;

/// FNV-1a over the key bytes, finished with a murmur-style avalanche.
/// Raw FNV-1a barely diffuses trailing-byte differences, and workload
/// keys differ only in their last digits — without the finalizer a small
/// key space lands in one arc of the ring and starves whole shards.
fn key_hash(key: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

/// Consistent-hash key → shard routing.
///
/// Each shard owns [`VNODES`] points on a 64-bit ring, placed by the
/// `"shard.salt"` named RNG stream (so ring layout depends only on the
/// seed, never on call order elsewhere); a key maps to the owner of the
/// first point at or clockwise of its hash. Adding or removing one shard
/// moves only the arcs adjacent to its points — the property that makes
/// the scheme *consistent*.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `(point, shard)` sorted by point.
    ring: Vec<(u64, usize)>,
    num_shards: usize,
}

impl ShardRouter {
    /// Builds a ring for `num_shards` shards from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero.
    pub fn new(num_shards: usize, seed: u64) -> Self {
        assert!(num_shards > 0, "router needs at least one shard");
        let mut rng = Pcg32::named(seed, "shard.salt");
        let mut ring: Vec<(u64, usize)> = (0..num_shards)
            .flat_map(|shard| (0..VNODES).map(move |v| (shard, v)))
            .map(|(shard, _)| (rng.next_u64(), shard))
            .collect();
        ring.sort_unstable();
        ring.dedup_by_key(|(p, _)| *p);
        ShardRouter { ring, num_shards }
    }

    /// Number of shards on the ring.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Routes a key to its shard.
    pub fn route(&self, key: &[u8]) -> usize {
        let h = key_hash(key);
        self.ring[self.owner_idx(h)].1
    }

    /// Routes a key to its replica set of two: the primary plus the
    /// failover — the owner of the next clockwise ring point held by a
    /// *different* shard. Walking vnodes (rather than `(primary+1) % k`)
    /// keeps the failover assignment consistent: removing an unrelated
    /// shard's vnodes never changes which shard backs up a key. With one
    /// shard the failover degenerates to the primary.
    pub fn route_with_failover(&self, key: &[u8]) -> (usize, usize) {
        let h = key_hash(key);
        let idx = self.owner_idx(h);
        let primary = self.ring[idx].1;
        for step in 1..self.ring.len() {
            let s = self.ring[(idx + step) % self.ring.len()].1;
            if s != primary {
                return (primary, s);
            }
        }
        (primary, primary)
    }

    fn owner_idx(&self, h: u64) -> usize {
        match self.ring.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => i,
            // Clockwise successor; past the last point wraps to the first.
            Err(i) => i % self.ring.len(),
        }
    }
}

/// One client-facing connection's state.
struct ClientConn {
    parser: CommandParser,
    call_pending: bool,
    /// Responses (or tails) awaiting client-socket send-buffer space.
    out_backlog: VecDeque<Vec<u8>>,
    flush_pending: bool,
}

impl ClientConn {
    fn new() -> Self {
        ClientConn {
            parser: CommandParser::new(),
            call_pending: false,
            out_backlog: VecDeque::new(),
            flush_pending: false,
        }
    }
}

/// One upstream (proxy → shard) connection's state.
struct Upstream {
    sock: SocketId,
    connected: bool,
    parser: ResponseParser,
    call_pending: bool,
    /// Commands (or tails) awaiting upstream send-buffer space; also
    /// buffers everything issued before the handshake completes.
    out_backlog: VecDeque<Vec<u8>>,
    flush_pending: bool,
    /// Requests awaiting responses from this shard with the time each
    /// command was forwarded, in request order (RESP responses come back
    /// FIFO per connection).
    waiting: VecDeque<(u64, Nanos)>,
    /// A reconnect call is already scheduled (resilient mode only).
    reconnect_pending: bool,
    /// Consecutive re-dials since the last successful connect; indexes
    /// the reconnect backoff ladder.
    reconnect_attempts: u32,
}

/// The proxy's failure-handling configuration — one per arm of the
/// failover experiment. Attached via
/// [`with_resilience`](ProxyApp::with_resilience); without it the proxy
/// is the naive no-defense build.
#[derive(Debug, Clone, Copy)]
pub struct Resilience {
    /// Deadline/backoff/budget tuning shared by retries and hedges.
    pub retry: RetryConfig,
    /// Grant retries for expired or reset attempts (off = attempts that
    /// die are failed back to the client after one deadline).
    pub retries_enabled: bool,
    /// Hedge late attempts to the failover replica.
    pub hedging_enabled: bool,
    /// Per-upstream routing breaker tuning; `None` disables breakers.
    pub breaker: Option<BreakerConfig>,
}

impl Resilience {
    /// Deadlines only: expired attempts fail fast, nothing is re-sent.
    pub fn timeout_only(retry: RetryConfig) -> Self {
        Resilience {
            retry,
            retries_enabled: false,
            hedging_enabled: false,
            breaker: None,
        }
    }

    /// Deadlines plus budgeted retries.
    pub fn with_retries(retry: RetryConfig) -> Self {
        Resilience {
            retries_enabled: true,
            ..Self::timeout_only(retry)
        }
    }

    /// The full stack: deadlines, retries, hedging, and breakers.
    pub fn full(retry: RetryConfig, breaker: BreakerConfig) -> Self {
        Resilience {
            retry,
            retries_enabled: true,
            hedging_enabled: true,
            breaker: Some(breaker),
        }
    }
}

/// One in-flight copy of a request.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    shard: usize,
    sent: Nanos,
    deadline: Nanos,
}

/// A request admitted from a client and not yet answered (or failed).
struct PendingReq {
    client: SocketId,
    cmd: Command,
    /// The key's primary shard on the ring.
    home: usize,
    /// The key's failover replica (== `home` when there is only one
    /// shard).
    failover: usize,
    /// Total attempts issued so far (the initial send counts).
    attempts: u32,
    hedged: bool,
    /// A retry is scheduled on the app-call queue; suppresses further
    /// expiry handling until it fires.
    retry_scheduled: bool,
    /// Live (unanswered, unexpired) copies, at most one per shard.
    live: Vec<Attempt>,
}

/// Per-run proxy statistics.
#[derive(Debug, Default, Clone)]
pub struct ProxyStats {
    /// Commands routed upstream.
    pub forwarded: u64,
    /// Responses relayed back to clients.
    pub responses: u64,
    /// Per-shard command counts (who got the traffic).
    pub per_shard: Vec<u64>,
    /// Per-shard measured back-leg round trips (command forwarded →
    /// response parsed) — the ground truth the back-leg estimates chase.
    pub back_rtt: Vec<Histogram>,
    /// Attempts that outlived their deadline.
    pub timeouts: u64,
    /// Requests failed back to the client (deadline exhausted, no retry
    /// granted).
    pub failed: u64,
    /// Attempts redirected away from a request's home shard (breaker
    /// open at admit, or a retry probing the failover replica).
    pub failovers: u64,
    /// Upstream connection resets observed.
    pub upstream_resets: u64,
    /// Responses that arrived for a request no longer pending (hedge or
    /// retry losers); their writes are deduplicated at the shard.
    pub orphan_responses: u64,
}

/// The sharding proxy application.
pub struct ProxyApp {
    costs: AppCosts,
    upstream_config: TcpConfig,
    shard_hosts: Vec<HostId>,
    router: ShardRouter,
    tick_period: Nanos,
    /// Deadline/hedge scan cadence. Much finer than the estimation tick:
    /// a hedge fired one tick late is a hedge that loses to the deadline.
    scan_period: Nanos,
    conns: BTreeMap<usize, ClientConn>,
    /// Upstream state, indexed by shard.
    ups: Vec<Upstream>,
    /// Upstream socket → shard (the wake path's reverse map). Stale
    /// entries from before a reconnect stay in the map and are filtered
    /// by comparing against the upstream's current socket.
    up_by_sock: BTreeMap<usize, usize>,
    /// Optional per-shard estimation + control planes.
    pub driver: Option<ProxyDriver>,
    /// Aggregate statistics.
    pub stats: ProxyStats,
    /// Failure-handling configuration; `None` = naive no-defense build.
    resilience: Option<Resilience>,
    /// The deadline/retry/hedge arithmetic (present iff `resilience`).
    policy: Option<RetryPolicy>,
    /// Per-shard routing breakers (empty unless configured).
    breakers: Vec<UpstreamBreaker>,
    /// Pending requests by id. BTreeMap: the deadline scan iterates, and
    /// simulation state must iterate deterministically.
    reqs: BTreeMap<u64, PendingReq>,
    next_req_id: u64,
    /// Abandoned attempts `(id, shard, deadline)` of already-answered
    /// requests (hedge losers). They stay on the books so the breaker
    /// still learns: an orphan response before the deadline is a success,
    /// expiry a failure — without this, hedges mask every slow-shard
    /// timeout and the breaker never trips on a browning shard.
    zombies: Vec<(u64, usize, Nanos)>,
    /// `at` of the newest composed estimate already fed to each shard's
    /// breaker, so a frozen (dead-upstream) estimate is fed only once and
    /// cannot keep relaxing the trip streak while timeouts accumulate.
    conf_fed_at: Vec<Nanos>,
}

impl ProxyApp {
    /// Creates a proxy routing over `router` to the given shard hosts,
    /// opening each upstream with `upstream_config`.
    ///
    /// # Panics
    ///
    /// Panics when the router's shard count does not match the host list.
    pub fn new(
        costs: AppCosts,
        upstream_config: TcpConfig,
        shard_hosts: Vec<HostId>,
        router: ShardRouter,
    ) -> Self {
        assert_eq!(
            router.num_shards(),
            shard_hosts.len(),
            "one shard host per ring shard"
        );
        let shards = shard_hosts.len();
        ProxyApp {
            costs,
            upstream_config,
            shard_hosts,
            router,
            tick_period: Nanos::from_micros(500),
            scan_period: Nanos::from_micros(100),
            conns: BTreeMap::new(),
            ups: Vec::new(),
            up_by_sock: BTreeMap::new(),
            driver: None,
            stats: ProxyStats {
                per_shard: vec![0; shards],
                back_rtt: vec![Histogram::new(); shards],
                ..ProxyStats::default()
            },
            resilience: None,
            policy: None,
            breakers: Vec::new(),
            reqs: BTreeMap::new(),
            next_req_id: 1,
            zombies: Vec::new(),
            conf_fed_at: vec![Nanos::ZERO; shards],
        }
    }

    /// Attaches a failure-handling stack (deadlines, and per the config:
    /// retries, hedging, breakers). Requests gain idempotency ids on the
    /// wire; upstream resets are recovered by re-dialing with backoff.
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.policy = Some(RetryPolicy::new(resilience.retry));
        self.breakers = match resilience.breaker {
            Some(b) => (0..self.shard_hosts.len())
                .map(|_| UpstreamBreaker::new(b))
                .collect(),
            None => Vec::new(),
        };
        self.resilience = Some(resilience);
        self
    }

    /// The retry/hedge policy, when resilience is attached (for audit
    /// counters: retries, hedges, budget denials).
    pub fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.policy.as_ref()
    }

    /// One shard's routing breaker, when breakers are configured.
    pub fn upstream_breaker(&self, shard: usize) -> Option<&UpstreamBreaker> {
        self.breakers.get(shard)
    }

    /// Total breaker trips across shards.
    pub fn breaker_trips(&self) -> u64 {
        self.breakers.iter().map(|b| b.trips()).sum()
    }

    /// Attaches the per-shard estimation/control driver.
    ///
    /// # Panics
    ///
    /// Panics when the driver's shard count does not match the proxy's.
    pub fn with_driver(mut self, driver: ProxyDriver) -> Self {
        assert_eq!(
            driver.num_shards(),
            self.shard_hosts.len(),
            "one driver plane per shard"
        );
        self.driver = Some(driver);
        self
    }

    /// The router (for key → shard audits).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The upstream socket serving a shard, once opened.
    pub fn upstream_sock(&self, shard: usize) -> Option<SocketId> {
        self.ups.get(shard).map(|u| u.sock)
    }

    /// Depth of a shard upstream's FIFO pairing queue: attempts written
    /// to the *current* connection still awaiting their response. A
    /// reconnect must leave nothing from the old connection here —
    /// stale entries would pair with the new connection's responses.
    pub fn upstream_waiting(&self, shard: usize) -> usize {
        self.ups.get(shard).map_or(0, |u| u.waiting.len())
    }

    /// Requests admitted but not yet answered or failed back.
    pub fn pending_requests(&self) -> usize {
        self.reqs.len()
    }

    /// Writes to a client socket, stashing what the send buffer rejects.
    fn send_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, wire: Vec<u8>) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        if conn.out_backlog.is_empty() {
            let sent = ctx.send(sock, &wire);
            if sent < wire.len() {
                let conn = self.conns.get_mut(&sock.0).expect("conn");
                conn.out_backlog.push_back(wire[sent..].to_vec());
            }
        } else {
            conn.out_backlog.push_back(wire);
        }
    }

    /// Writes to a shard's upstream, buffering while unconnected or
    /// backpressured.
    fn send_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize, wire: Vec<u8>) {
        let up = &mut self.ups[shard];
        if up.connected && up.out_backlog.is_empty() {
            let sock = up.sock;
            let sent = ctx.send(sock, &wire);
            if sent < wire.len() {
                self.ups[shard].out_backlog.push_back(wire[sent..].to_vec());
            }
        } else {
            up.out_backlog.push_back(wire);
        }
    }

    /// Drains a client socket's write backlog as far as the buffer allows.
    fn flush_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        conn.flush_pending = false;
        while let Some(front) = self
            .conns
            .get_mut(&sock.0)
            .expect("conn")
            .out_backlog
            .front_mut()
        {
            let sent = ctx.send(sock, front);
            let done = sent == front.len();
            let conn = self.conns.get_mut(&sock.0).expect("conn");
            let front = conn.out_backlog.front_mut().expect("non-empty");
            if !done {
                front.drain(..sent);
                break;
            }
            conn.out_backlog.pop_front();
        }
    }

    /// Drains a shard upstream's write backlog.
    fn flush_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.ups[shard].flush_pending = false;
        if !self.ups[shard].connected {
            return;
        }
        let sock = self.ups[shard].sock;
        while let Some(front) = self.ups[shard].out_backlog.front_mut() {
            let sent = ctx.send(sock, front);
            if sent < front.len() {
                front.drain(..sent);
                break;
            }
            self.ups[shard].out_backlog.pop_front();
        }
    }

    /// One processing pass over a client connection: read, route every
    /// complete command to its shard, remember who to answer.
    fn process_client(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
        conn.call_pending = false;
        let (data, _msgs) = ctx.recv(sock, usize::MAX);
        let conn = self.conns.get_mut(&sock.0).expect("just inserted");
        conn.parser.feed(&data);
        while let Some(cmd) = self
            .conns
            .get_mut(&sock.0)
            .expect("conn")
            .parser
            .next_command()
        {
            self.admit(ctx, sock, cmd);
        }
    }

    /// Admits one client command: route (diverting an open-breaker home
    /// shard to the failover), register in the pending table, dispatch.
    fn admit(&mut self, ctx: &mut HostCtx<'_>, client: SocketId, cmd: Command) {
        let (payload, home, failover) = match &cmd {
            Command::Set { key, value, .. } => {
                let (h, f) = self.router.route_with_failover(key);
                (key.len() + value.len(), h, f)
            }
            Command::Get { key, .. } => {
                let (h, f) = self.router.route_with_failover(key);
                (key.len(), h, f)
            }
        };
        ctx.charge_app(self.costs.proxy_forward(payload));
        let now = ctx.now();
        let mut target = home;
        if self.resilience.is_some() {
            if !self.shard_allowed(home, now) && failover != home && self.shard_allowed(failover, now)
            {
                target = failover;
                self.stats.failovers += 1;
            }
            if let Some(p) = self.policy.as_mut() {
                p.on_request();
            }
        }
        let deadline = self
            .policy
            .as_ref()
            .map(|p| p.attempt_deadline(now))
            .unwrap_or(Nanos::ZERO);
        let id = self.next_req_id;
        self.next_req_id += 1;
        self.reqs.insert(
            id,
            PendingReq {
                client,
                cmd,
                home,
                failover,
                attempts: 1,
                hedged: false,
                retry_scheduled: false,
                live: vec![Attempt {
                    shard: target,
                    sent: now,
                    deadline,
                }],
            },
        );
        self.dispatch(ctx, id, target);
        self.stats.forwarded += 1;
        self.stats.per_shard[target] += 1;
    }

    /// Encodes and sends one attempt of a pending request to `shard`.
    /// Resilient mode tags the wire with the request id so the shard's
    /// store can deduplicate retried/hedged writes; naive mode keeps the
    /// untagged wire byte-identical to the pre-resilience proxy.
    fn dispatch(&mut self, ctx: &mut HostCtx<'_>, id: u64, shard: usize) {
        let req = self.reqs.get(&id).expect("dispatching a pending request");
        let tagged = self.resilience.is_some();
        let wire = match &req.cmd {
            Command::Set { key, value, .. } => {
                if tagged {
                    encode_set_with_id(key, value, id)
                } else {
                    encode_set(key, value)
                }
            }
            Command::Get { key, .. } => {
                if tagged {
                    encode_get_with_id(key, id)
                } else {
                    encode_get(key)
                }
            }
        };
        self.ups[shard].waiting.push_back((id, ctx.now()));
        self.send_upstream(ctx, shard, wire);
    }

    /// True when the shard's breaker (if any) admits new attempts.
    fn shard_allowed(&mut self, shard: usize, now: Nanos) -> bool {
        match self.breakers.get_mut(shard) {
            Some(b) => b.allow(now),
            None => true,
        }
    }

    /// One processing pass over a shard upstream: read, relay every
    /// complete response to the client that asked, FIFO.
    fn process_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.ups[shard].call_pending = false;
        if !self.ups[shard].connected {
            return;
        }
        let sock = self.ups[shard].sock;
        let (data, _msgs) = ctx.recv(sock, usize::MAX);
        self.ups[shard].parser.feed(&data);
        while let Some(resp) = self.ups[shard].parser.next_response() {
            let payload = match &resp {
                Response::Value(v) => v.len(),
                Response::Ok | Response::Nil => 0,
            };
            ctx.charge_app(self.costs.proxy_forward(payload));
            let Some((id, sent_at)) = self.ups[shard].waiting.pop_front() else {
                if self.resilience.is_none() {
                    panic!("response without a waiting client");
                }
                self.stats.orphan_responses += 1;
                continue;
            };
            let now = ctx.now();
            match self.reqs.remove(&id) {
                Some(req) => {
                    self.stats.back_rtt[shard].record(now - sent_at);
                    if let Some(b) = self.breakers.get_mut(shard) {
                        b.record_success(now);
                    }
                    // Any other live attempt (a hedge loser) stays on the
                    // books for breaker accounting until its deadline.
                    for a in req.live.iter().filter(|a| a.shard != shard) {
                        self.zombies.push((id, a.shard, a.deadline));
                    }
                    self.send_client(ctx, req.client, encode_response(&resp));
                    self.stats.responses += 1;
                }
                None => {
                    // A hedge/retry loser, or a request already failed:
                    // the client was answered elsewhere. The shard is
                    // alive though — credit its breaker and retire the
                    // matching zombie before it expires into a failure.
                    self.stats.orphan_responses += 1;
                    self.zombies
                        .retain(|&(zid, zshard, _)| !(zid == id && zshard == shard));
                    if let Some(b) = self.breakers.get_mut(shard) {
                        b.record_success(now);
                    }
                }
            }
        }
    }

    fn tick(&mut self, ctx: &mut HostCtx<'_>) {
        if let Some(mut driver) = self.driver.take() {
            // Sorted client order (BTreeMap) keeps the tick deterministic.
            let client_socks: Vec<SocketId> =
                self.conns.keys().map(|&s| SocketId(s)).collect();
            let upstreams: Vec<Option<SocketId>> = self
                .ups
                .iter()
                .map(|u| u.connected.then_some(u.sock))
                .collect();
            driver.tick(ctx, &client_socks, &upstreams);
            // Joint breaker feed: each *fresh* composed estimate reports
            // its confidence to the shard's breaker. Frozen estimates
            // (dead upstream → no updates) are fed once, not every tick,
            // so stale confidence cannot out-vote accumulating timeouts.
            let now = ctx.now();
            for shard in 0..self.breakers.len() {
                if let Some(est) = driver.latest_composed(shard) {
                    if est.at > self.conf_fed_at[shard] {
                        self.conf_fed_at[shard] = est.at;
                        self.breakers[shard].note_confidence(now, est.confidence);
                    }
                }
            }
            self.driver = Some(driver);
        }
        ctx.call_after(self.tick_period, token(KIND_TICK, 0));
    }

    /// Runs on its own fine-grained cadence (resilient proxies only):
    /// expires attempts past their deadline and hedges single attempts
    /// the composed estimate's P99 view calls late.
    fn scan_deadlines(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let resilience = self.resilience.expect("scan only runs resilient");
        let mut expired: Vec<(u64, usize)> = Vec::new();
        let mut hedges: Vec<(u64, usize)> = Vec::new();
        for (&id, req) in &self.reqs {
            for a in &req.live {
                if now >= a.deadline {
                    expired.push((id, a.shard));
                }
            }
            if resilience.hedging_enabled
                && !req.hedged
                && req.failover != req.home
                && req.live.len() == 1
            {
                let a = req.live[0];
                if now < a.deadline {
                    // "Late" is judged against the *failover target's*
                    // composed estimate — a healthy baseline for how long
                    // this request should have taken. The stuck shard's
                    // own estimate inflates under the very fault the
                    // hedge defends against, which would push the hedge
                    // window shut exactly when it is needed.
                    let est_mean = self
                        .driver
                        .as_ref()
                        .and_then(|d| d.latest_composed(req.failover))
                        .map(|e| e.smoothed_latency);
                    let delay = self
                        .policy
                        .as_ref()
                        .expect("resilient proxies have a policy")
                        .hedge_delay(est_mean);
                    if now >= a.sent + delay {
                        hedges.push((id, req.failover));
                    }
                }
            }
        }
        for (id, shard) in expired {
            self.attempt_failed(ctx, id, shard, true);
        }
        for (id, target) in hedges {
            self.try_hedge(ctx, id, target);
        }
        // Abandoned hedge losers past their deadline: the shard never
        // answered a request it owed — the breaker hears about it even
        // though the client was long since served.
        let zombies = std::mem::take(&mut self.zombies);
        for (id, shard, deadline) in zombies {
            if now >= deadline {
                self.stats.timeouts += 1;
                if let Some(b) = self.breakers.get_mut(shard) {
                    b.record_failure(now);
                }
            } else {
                self.zombies.push((id, shard, deadline));
            }
        }
    }

    /// Handles the death of one attempt (deadline expiry or connection
    /// reset): drops the live copy, feeds the breaker, and — when no
    /// copies remain — retries under budget or fails the request.
    fn attempt_failed(&mut self, ctx: &mut HostCtx<'_>, id: u64, shard: usize, timed_out: bool) {
        let now = ctx.now();
        let Some(req) = self.reqs.get_mut(&id) else {
            return;
        };
        let before = req.live.len();
        req.live.retain(|a| a.shard != shard);
        if req.live.len() == before {
            return; // already removed (e.g. reset drained it first)
        }
        if timed_out {
            self.stats.timeouts += 1;
            // Resets feed the breaker once per event at the teardown
            // site, not once per drained attempt.
            if let Some(b) = self.breakers.get_mut(shard) {
                b.record_failure(now);
            }
        }
        let req = self.reqs.get_mut(&id).expect("still pending");
        if !req.live.is_empty() || req.retry_scheduled {
            return;
        }
        let attempts = req.attempts;
        let retries_on = self
            .resilience
            .map(|r| r.retries_enabled)
            .unwrap_or(false);
        if retries_on {
            if let Some(delay) = self
                .policy
                .as_mut()
                .expect("resilient proxies have a policy")
                .request_attempt(AttemptKind::Retry, attempts, id)
            {
                self.reqs.get_mut(&id).expect("still pending").retry_scheduled = true;
                ctx.call_after(delay, token(KIND_RETRY, id as usize));
                return;
            }
        }
        self.fail_request(ctx, id);
    }

    /// Fails a pending request back to its client as `Nil` (keeping the
    /// client's pipelined FIFO pairing intact — a silent drop would skew
    /// every later response on that connection).
    fn fail_request(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        let Some(req) = self.reqs.remove(&id) else {
            return;
        };
        self.stats.failed += 1;
        self.send_client(ctx, req.client, encode_response(&Response::Nil));
    }

    /// A scheduled retry fires: issue the next attempt, alternating
    /// between the failover replica and home (breaker permitting).
    fn do_retry(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        let now = ctx.now();
        let Some(req) = self.reqs.get_mut(&id) else {
            return; // answered while the backoff ran
        };
        req.retry_scheduled = false;
        req.attempts += 1;
        let (home, failover, attempts) = (req.home, req.failover, req.attempts);
        // The first retry assumes a transient blip and goes back home
        // (the owner keeps data locality; a delivered-but-stalled original
        // is deduplicated there by the idempotency window). Later retries
        // assume the shard is sick and probe the failover replica — unless
        // the breaker says that side is dead and the other is not.
        let (prefer, alt) = if attempts <= 2 {
            (home, failover)
        } else {
            (failover, home)
        };
        let target = if self.shard_allowed(prefer, now) || !self.shard_allowed(alt, now) {
            prefer
        } else {
            alt
        };
        let deadline = self
            .policy
            .as_ref()
            .expect("resilient proxies have a policy")
            .attempt_deadline(now);
        let req = self.reqs.get_mut(&id).expect("still pending");
        req.live.push(Attempt {
            shard: target,
            sent: now,
            deadline,
        });
        let payload = cmd_payload(&req.cmd);
        ctx.charge_app(self.costs.proxy_forward(payload));
        if target != home {
            self.stats.failovers += 1;
        }
        self.stats.per_shard[target] += 1;
        self.dispatch(ctx, id, target);
    }

    /// Hedges a late request: duplicate the outstanding attempt to the
    /// failover replica, budget permitting; first response wins.
    fn try_hedge(&mut self, ctx: &mut HostCtx<'_>, id: u64, target: usize) {
        let now = ctx.now();
        if !self.shard_allowed(target, now) {
            return;
        }
        let Some(req) = self.reqs.get_mut(&id) else {
            return;
        };
        if req.hedged || req.live.len() != 1 || req.live[0].shard == target {
            return;
        }
        let attempts = req.attempts;
        if self
            .policy
            .as_mut()
            .expect("resilient proxies have a policy")
            .request_attempt(AttemptKind::Hedge, attempts, id)
            .is_none()
        {
            return;
        }
        let deadline = self
            .policy
            .as_ref()
            .expect("resilient proxies have a policy")
            .attempt_deadline(now);
        let req = self.reqs.get_mut(&id).expect("still pending");
        req.hedged = true;
        req.attempts += 1;
        req.live.push(Attempt {
            shard: target,
            sent: now,
            deadline,
        });
        let payload = cmd_payload(&req.cmd);
        ctx.charge_app(self.costs.proxy_forward(payload));
        self.stats.failovers += 1;
        self.stats.per_shard[target] += 1;
        self.dispatch(ctx, id, target);
    }

    /// An upstream connection reset. Tear the leg down cleanly: fresh
    /// parser, cleared write backlog (never replayed on a new socket —
    /// bytes already handed to the old socket are indistinguishable from
    /// delivered), and every in-flight request on this shard failed or
    /// retried — never left to mis-pair with the next connection's
    /// responses. Resilient mode re-dials with backoff; the naive build
    /// just marks the leg down and forgets.
    fn on_upstream_reset(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.stats.upstream_resets += 1;
        let now = ctx.now();
        let up = &mut self.ups[shard];
        up.connected = false;
        if self.resilience.is_none() {
            return;
        }
        up.parser = ResponseParser::new();
        up.out_backlog.clear();
        up.flush_pending = false;
        let drained: Vec<u64> = up.waiting.drain(..).map(|(id, _)| id).collect();
        // The reset counts as one breaker failure; zombies on this shard
        // can never be answered now, so drop them rather than letting
        // their expiry inflate that into a streak.
        self.zombies.retain(|&(_, s, _)| s != shard);
        if let Some(b) = self.breakers.get_mut(shard) {
            b.record_failure(now);
        }
        for id in drained {
            self.attempt_failed(ctx, id, shard, false);
        }
        self.schedule_reconnect(ctx, shard);
    }

    fn schedule_reconnect(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        if self.ups[shard].reconnect_pending {
            return;
        }
        self.ups[shard].reconnect_pending = true;
        self.ups[shard].reconnect_attempts += 1;
        let delay = self
            .policy
            .as_ref()
            .expect("resilient proxies have a policy")
            .reconnect_backoff(self.ups[shard].reconnect_attempts, shard as u64);
        ctx.call_after(delay, token(KIND_RECONNECT, shard));
    }

    /// Re-dials a reset upstream on a fresh socket. The old socket's
    /// `up_by_sock` entry stays behind; wakes for it are filtered against
    /// the upstream's current socket.
    fn reconnect_upstream(&mut self, ctx: &mut HostCtx<'_>, shard: usize) {
        self.ups[shard].reconnect_pending = false;
        if self.ups[shard].connected {
            return;
        }
        let sock = ctx.connect_to(self.shard_hosts[shard], self.upstream_config);
        self.up_by_sock.insert(sock.0, shard);
        self.ups[shard].sock = sock;
        self.ups[shard].parser = ResponseParser::new();
    }
}

/// Payload size the proxy charges for re-encoding a command.
fn cmd_payload(cmd: &Command) -> usize {
    match cmd {
        Command::Set { key, value, .. } => key.len() + value.len(),
        Command::Get { key, .. } => key.len(),
    }
}

impl App for ProxyApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // One upstream per shard, opened through the simulated stack; the
        // socket id is known immediately, writes buffer until `Connected`.
        for (shard, &host) in self.shard_hosts.iter().enumerate() {
            let sock = ctx.connect_to(host, self.upstream_config);
            self.up_by_sock.insert(sock.0, shard);
            self.ups.push(Upstream {
                sock,
                connected: false,
                parser: ResponseParser::new(),
                call_pending: false,
                out_backlog: VecDeque::new(),
                flush_pending: false,
                waiting: VecDeque::new(),
                reconnect_pending: false,
                reconnect_attempts: 0,
            });
        }
        ctx.call_after(self.tick_period, token(KIND_TICK, 0));
        if self.resilience.is_some() {
            ctx.call_after(self.scan_period, token(KIND_SCAN, 0));
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, reason: WakeReason) {
        // Upstream sockets are the ones the proxy opened; everything else
        // is a client-facing accept. Wakes for a socket an upstream has
        // reconnected away from are stale — drop them.
        let upstream = self.up_by_sock.get(&sock.0).copied();
        if let Some(shard) = upstream {
            if self.ups[shard].sock != sock {
                return;
            }
        }
        match reason {
            WakeReason::Connected => {
                if let Some(shard) = upstream {
                    self.ups[shard].connected = true;
                    self.ups[shard].reconnect_attempts = 0;
                    if !self.ups[shard].out_backlog.is_empty() && !self.ups[shard].flush_pending {
                        self.ups[shard].flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_UP_FLUSH, shard));
                    }
                }
            }
            WakeReason::Reset => {
                if let Some(shard) = upstream {
                    self.on_upstream_reset(ctx, shard);
                }
            }
            WakeReason::Accepted => {
                self.conns.insert(sock.0, ClientConn::new());
            }
            WakeReason::Readable => match upstream {
                Some(shard) => {
                    if !self.ups[shard].call_pending {
                        self.ups[shard].call_pending = true;
                        ctx.wake_app_thread(token(KIND_UP_PROCESS, shard));
                    }
                }
                None => {
                    let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
                    if !conn.call_pending {
                        conn.call_pending = true;
                        ctx.wake_app_thread(token(KIND_PROCESS, sock.0));
                    }
                }
            },
            WakeReason::Writable => match upstream {
                Some(shard) => {
                    if self.ups[shard].connected
                        && !self.ups[shard].out_backlog.is_empty()
                        && !self.ups[shard].flush_pending
                    {
                        self.ups[shard].flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_UP_FLUSH, shard));
                    }
                }
                None => {
                    let conn = self.conns.entry(sock.0).or_insert_with(ClientConn::new);
                    if !conn.out_backlog.is_empty() && !conn.flush_pending {
                        conn.flush_pending = true;
                        let at = ctx.app_free_at();
                        ctx.call_at(at, token(KIND_FLUSH, sock.0));
                    }
                }
            },
        }
    }

    fn on_call(&mut self, ctx: &mut HostCtx<'_>, tok: u64) {
        let kind = tok >> TOKEN_KIND_SHIFT;
        let idx = (tok & 0xFFFF_FFFF) as usize;
        match kind {
            KIND_PROCESS => self.process_client(ctx, SocketId(idx)),
            KIND_FLUSH => self.flush_client(ctx, SocketId(idx)),
            KIND_UP_PROCESS => self.process_upstream(ctx, idx),
            KIND_UP_FLUSH => self.flush_upstream(ctx, idx),
            KIND_TICK => self.tick(ctx),
            KIND_SCAN => {
                self.scan_deadlines(ctx);
                ctx.call_after(self.scan_period, token(KIND_SCAN, 0));
            }
            KIND_RETRY => self.do_retry(ctx, idx as u64),
            KIND_RECONNECT => self.reconnect_upstream(ctx, idx),
            other => panic!("unknown proxy token kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_deterministic_and_total() {
        let r1 = ShardRouter::new(4, 42);
        let r2 = ShardRouter::new(4, 42);
        for i in 0..1000 {
            let key = format!("key:{i:012}");
            let s = r1.route(key.as_bytes());
            assert_eq!(s, r2.route(key.as_bytes()));
            assert!(s < 4);
        }
    }

    #[test]
    fn router_spreads_keys_across_shards() {
        let r = ShardRouter::new(4, 7);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let key = format!("key:{i:012}");
            counts[r.route(key.as_bytes())] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c > 400,
                "shard {shard} starved: {counts:?} — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn different_seeds_lay_out_different_rings() {
        let a = ShardRouter::new(4, 1);
        let b = ShardRouter::new(4, 2);
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("key:{i:012}");
                a.route(key.as_bytes()) != b.route(key.as_bytes())
            })
            .count();
        assert!(moved > 250, "only {moved} keys moved between seeds");
    }

    #[test]
    fn removing_a_shard_only_moves_its_keys() {
        // Consistency: keys on surviving shards of a 4-ring must map to
        // the same shard on the 3-ring built from the same seed whenever
        // their owning arc did not belong to the removed shard. With
        // independent ring points per shard count this is statistical:
        // far fewer keys move than a modulo scheme's ~75%.
        let four = ShardRouter::new(4, 9);
        let three = ShardRouter::new(3, 9);
        let moved = (0..2000)
            .filter(|i| {
                let key = format!("key:{i:012}");
                let s4 = four.route(key.as_bytes());
                s4 < 3 && three.route(key.as_bytes()) != s4
            })
            .count();
        assert!(moved < 700, "{moved}/2000 surviving keys moved");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_router_rejected() {
        let _ = ShardRouter::new(0, 1);
    }

    #[test]
    fn failover_replica_is_a_distinct_shard() {
        let r = ShardRouter::new(4, 42);
        for i in 0..1000 {
            let key = format!("key:{i:012}");
            let (home, failover) = r.route_with_failover(key.as_bytes());
            assert_eq!(home, r.route(key.as_bytes()));
            assert_ne!(home, failover, "replica set must span two shards");
            assert!(failover < 4);
        }
        // Degenerate single-shard ring: failover folds onto the primary.
        let one = ShardRouter::new(1, 42);
        assert_eq!(one.route_with_failover(b"k"), (0, 0));
    }

    #[test]
    fn failover_spreads_across_shards() {
        // The failover of a hot shard's keys must not all pile onto one
        // neighbor (that is the point of vnode-successor assignment over
        // `(home + 1) % k`).
        let r = ShardRouter::new(4, 7);
        let mut counts = [[0usize; 4]; 4];
        for i in 0..4000 {
            let key = format!("key:{i:012}");
            let (h, f) = r.route_with_failover(key.as_bytes());
            counts[h][f] += 1;
        }
        for home in 0..4 {
            let spread = (0..4).filter(|&f| f != home && counts[home][f] > 0).count();
            assert!(
                spread >= 2,
                "shard {home}'s failovers collapse onto too few shards: {counts:?}"
            );
        }
    }

    #[test]
    fn ring_successor_is_stable_under_vnode_removal() {
        // Removing one shard from the ring must not reshuffle replica
        // sets whose arcs it never owned: keys whose home *and* failover
        // both survive keep exactly that (home, failover) pair on the
        // smaller ring built from the same seed.
        let four = ShardRouter::new(4, 9);
        let three = ShardRouter::new(3, 9);
        let (mut eligible, mut moved) = (0usize, 0usize);
        for i in 0..2000 {
            let key = format!("key:{i:012}");
            let (h4, f4) = four.route_with_failover(key.as_bytes());
            if h4 < 3 && f4 < 3 {
                eligible += 1;
                if three.route_with_failover(key.as_bytes()) != (h4, f4) {
                    moved += 1;
                }
            }
        }
        assert!(eligible > 800, "test vacuous: only {eligible} eligible keys");
        // Consistency bound: only pairs adjacent to the removed shard's
        // vnodes may change — far fewer than a modulo scheme's ~100%.
        assert!(
            moved * 2 < eligible,
            "{moved}/{eligible} surviving replica sets moved"
        );
    }
}
