//! Running one shard-failure experiment point.
//!
//! The two-tier harness ([`crate::shard`]) measures batching under a
//! healthy shard tier; this one measures *survival*: the same skewed
//! N-client → proxy → K-shard topology with a tier-aware
//! [`ShardFaultPlan`](simnet::ShardFaultPlan) killing or browning out
//! shards mid-run, against a ladder of proxy defense arms
//! ([`FailoverArm`]): the naive no-defense proxy, deadlines only,
//! budgeted retries, and the full retry + hedge + breaker stack with
//! ring-successor failover routing.
//!
//! The interesting comparison per cell is each arm against the
//! *never-failed oracle* — the identical configuration with the fault
//! plan disabled. A defense stack earns its keep when its P99 and
//! goodput stay within a small factor of the oracle while the naive
//! proxy collapses (a dead hot shard head-of-line-blocks every client's
//! pipelined connection).

use batchpolicy::{BreakerConfig, ControlPlane, EpsilonGreedy, Objective, RetryConfig, TickController};
use e2e_core::ValidateConfig;
use littles::Nanos;
use simnet::{
    run, CpuContext, EventQueue, FaultConfig, Histogram, LinkConfig, Pcg32, RestartSchedule,
    ShardBrownout, ShardFaultPlan, WindowSchedule,
};
use tcpsim::{Host, HostId, NagleMode, TierSim, Unit};

use crate::cost::CostProfile;
use crate::driver::ProxyDriver;
use crate::loadgen::{KeyPool, LancetClient};
use crate::proxy::{ProxyApp, Resilience, ShardRouter};
use crate::runner::{shield, tcp_config, Overrides};
use crate::server::RedisServer;
use crate::workload::WorkloadSpec;

/// The proxy's defense ladder, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverArm {
    /// The naive proxy: no deadlines, no reconnect. A reset upstream is
    /// forgotten and every request routed to it is silently lost.
    NoDefense,
    /// Per-attempt deadlines only: stranded requests fail fast back to
    /// the client, and reset upstreams are re-dialed — but nothing is
    /// ever re-sent.
    TimeoutOnly,
    /// Deadlines plus budgeted retries with backoff, alternating between
    /// the home shard and its ring-successor failover replica.
    Retry,
    /// The full stack: retries, estimate-driven hedging to the failover
    /// replica, and per-upstream breakers redirecting traffic away from
    /// a dead shard at admit time.
    Full,
}

impl FailoverArm {
    /// All arms, weakest first.
    pub const ALL: [FailoverArm; 4] = [
        FailoverArm::NoDefense,
        FailoverArm::TimeoutOnly,
        FailoverArm::Retry,
        FailoverArm::Full,
    ];

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailoverArm::NoDefense => "no_defense",
            FailoverArm::TimeoutOnly => "timeout_only",
            FailoverArm::Retry => "retry",
            FailoverArm::Full => "full",
        }
    }
}

/// What goes wrong mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverScenario {
    /// The hot shard (owner of the skewed traffic) crashes a quarter of
    /// the way into the measurement window: both ends of its proxy link
    /// reset, in-flight requests die. The host keeps listening, so a
    /// defense that re-dials recovers; the naive proxy never does.
    CrashHot,
    /// A cold shard's application thread browns out periodically
    /// (GC-pause-like stalls), stretching its service time far past the
    /// healthy tail without ever dropping the connection.
    BrownoutCold,
}

impl FailoverScenario {
    /// Both scenarios, in grid order.
    pub const ALL: [FailoverScenario; 2] =
        [FailoverScenario::CrashHot, FailoverScenario::BrownoutCold];

    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailoverScenario::CrashHot => "crash_hot",
            FailoverScenario::BrownoutCold => "brownout_cold",
        }
    }
}

/// Everything that defines one failover experiment point.
#[derive(Debug, Clone, Copy)]
pub struct FailoverRunConfig {
    /// The aggregate workload (rate split evenly across clients).
    pub workload: WorkloadSpec,
    /// CPU cost profile.
    pub profile: CostProfile,
    /// The proxy's defense arm.
    pub arm: FailoverArm,
    /// The injected fault; `None` is the never-failed oracle.
    pub scenario: Option<FailoverScenario>,
    /// Warmup duration (excluded from measurement).
    pub warmup: Nanos,
    /// Measurement duration.
    pub measure: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Client hosts fanning into the proxy.
    pub num_clients: usize,
    /// Shard hosts behind the proxy.
    pub num_shards: usize,
    /// Fraction of requests drawing keys owned by the hot shard.
    pub hot_fraction: f64,
    /// Optional client-endpoint restart chaos (the PR-5 fault class),
    /// layered on top of the scenario's shard faults. Restart victims
    /// draw from `fault.restart`, shard-crash victims from
    /// `fault.shard_crash` — composing the two shifts neither stream.
    pub client_restart: Option<RestartSchedule>,
}

impl FailoverRunConfig {
    /// A standard failover run: 4 clients, 4 shards, 70% hot traffic,
    /// 200 ms warmup, 800 ms measurement.
    pub fn new(workload: WorkloadSpec, arm: FailoverArm, scenario: Option<FailoverScenario>) -> Self {
        FailoverRunConfig {
            workload,
            profile: CostProfile::shard_tier(),
            arm,
            scenario,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(800),
            seed: 0xFA11,
            num_clients: 4,
            num_shards: 4,
            hot_fraction: 0.7,
            client_restart: None,
        }
    }

    /// The retry/hedge tuning every resilient arm runs with.
    pub fn retry_config() -> RetryConfig {
        RetryConfig::default()
    }

    /// The breaker tuning the full arm runs with.
    pub fn breaker_config() -> BreakerConfig {
        BreakerConfig {
            min_confidence: 0.2,
            trip_after: 4,
            safe_on: false,
            initial_backoff: Nanos::from_millis(1),
            max_backoff: Nanos::from_millis(8),
            restore_after: 2,
        }
    }
}

/// The result of one failover run.
#[derive(Debug, Clone)]
pub struct FailoverPointResult {
    /// Offered aggregate load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput across every client.
    pub achieved_rps: f64,
    /// Measured mean end-to-end latency.
    pub measured_mean: Option<Nanos>,
    /// Measured median latency.
    pub measured_p50: Option<Nanos>,
    /// Measured 99th-percentile latency.
    pub measured_p99: Option<Nanos>,
    /// Latency samples in the window.
    pub samples: u64,
    /// The shard owning the hot key pool (the crash victim).
    pub hot_shard: usize,
    /// The browned-out cold shard (victim of `BrownoutCold`).
    pub cold_shard: usize,
    /// Commands the proxy routed to each shard.
    pub per_shard_requests: Vec<u64>,
    /// Shard crashes the fault plan fired.
    pub shard_crashes: u64,
    /// Client-endpoint restarts the fault plan fired.
    pub endpoint_restarts: u64,
    /// Peer epoch changes the proxy's back-leg registries detected — a
    /// crashed shard's replacement connection announces a new counter
    /// generation, and the estimator resynchronizes instead of computing
    /// a garbage delta across the wipe.
    pub back_epoch_changes: u64,
    /// Upstream connection resets the proxy observed.
    pub upstream_resets: u64,
    /// Attempts that outlived their deadline.
    pub timeouts: u64,
    /// Requests failed back to clients.
    pub failed: u64,
    /// Retries granted by the budget.
    pub retries: u64,
    /// Hedges granted by the budget.
    pub hedges: u64,
    /// Attempts denied by the exhausted budget.
    pub budget_denied: u64,
    /// Breaker trips across shards.
    pub breaker_trips: u64,
    /// Attempts redirected away from their home shard.
    pub failovers: u64,
    /// Hedge/retry losers whose responses arrived after the winner.
    pub orphan_responses: u64,
    /// Duplicate tagged SETs suppressed by the shards' idempotency
    /// windows (summed across shards).
    pub dedup_hits: u64,
    /// Simulator events processed.
    pub events: u64,
}

/// Builds the fault plan for a scenario (empty = oracle, bit-identical
/// to a fault-free run).
fn fault_config(cfg: &FailoverRunConfig, hot_shard: usize, cold_shard: usize) -> FaultConfig {
    let Some(scenario) = cfg.scenario else {
        return FaultConfig {
            restart: cfg.client_restart,
            ..FaultConfig::default()
        };
    };
    let shard = match scenario {
        // One decisive crash a quarter into the measurement window,
        // pinned to the hot shard (pinned victims draw nothing from the
        // crash stream, keeping the cell replayable by inspection).
        FailoverScenario::CrashHot => ShardFaultPlan {
            crash: Some(RestartSchedule {
                first_at: cfg.warmup + Nanos::from_nanos(cfg.measure.as_nanos() / 4),
                period: Nanos::ZERO,
            }),
            crash_target: Some(hot_shard),
            ..ShardFaultPlan::default()
        },
        // Periodic 4 ms app-thread stalls at 25% duty cycle on a cold
        // shard: connections stay up, service time stretches ~20× past
        // the healthy tail inside each window.
        FailoverScenario::BrownoutCold => ShardFaultPlan {
            brownout: Some(ShardBrownout {
                shard: cold_shard,
                windows: WindowSchedule {
                    first_at: cfg.warmup + Nanos::from_millis(4),
                    period: Nanos::from_millis(16),
                    duration: Nanos::from_millis(4),
                },
            }),
            ..ShardFaultPlan::default()
        },
    };
    FaultConfig {
        shard,
        restart: cfg.client_restart,
        start_at: cfg.warmup,
        ..FaultConfig::default()
    }
}

/// Executes one failover experiment point.
pub fn run_failover_point(cfg: &FailoverRunConfig) -> FailoverPointResult {
    let n = cfg.num_clients;
    let k = cfg.num_shards;
    assert!(n > 0, "a run needs at least one client");
    assert!(k > 1, "failover needs at least two shards");

    let ov = Overrides::default();
    // Batching is not under study here: every leg runs `TCP_NODELAY`
    // so the defense arms are compared on identical transport behavior.
    let front_tcp = tcp_config(NagleMode::Off, &ov);
    let upstream_tcp = tcp_config(NagleMode::Off, &ov);
    let shard_tcp = tcp_config(NagleMode::Off, &ov);

    let router = ShardRouter::new(k, cfg.seed);
    let mut owned: Vec<Vec<u64>> = vec![Vec::new(); k];
    for idx in 0..cfg.workload.key_space as u64 {
        let key = format!("key:{idx:012}");
        owned[router.route(key.as_bytes())].push(idx);
    }
    let hot_shard = owned
        .iter()
        .enumerate()
        .max_by_key(|(_, keys)| keys.len())
        .map(|(s, _)| s)
        .expect("at least one shard");
    // The brownout victim: the cold shard owning the most keys (so the
    // stalls hit real traffic without touching the hot path).
    let cold_shard = owned
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != hot_shard)
        .max_by_key(|(_, keys)| keys.len())
        .map(|(s, _)| s)
        .expect("at least two shards");
    let hot: Vec<u64> = owned[hot_shard].clone();
    let cold: Vec<u64> = owned
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != hot_shard)
        .flat_map(|(_, keys)| keys.iter().copied())
        .collect();

    // Same fork-per-client discipline as the shard harness, but on its
    // own declared stream so the two grids never correlate draws.
    let mut skew_rng = Pcg32::named(cfg.seed, "failover.skew");
    let mut spec = cfg.workload;
    spec.rate_rps = cfg.workload.rate_rps / n as f64;
    let end = cfg.warmup + cfg.measure;

    let clients: Vec<LancetClient> = (0..n)
        .map(|_| {
            LancetClient::new(spec, cfg.profile.app, front_tcp, cfg.warmup, end).with_key_pool(
                KeyPool::new(hot.clone(), cold.clone(), cfg.hot_fraction, skew_rng.fork()),
            )
        })
        .collect();

    // Estimation planes run in every arm (the full arm's hedge timing
    // and breaker confidence feed read them; the other arms pay the same
    // overhead so the comparison isolates the defense, not the
    // estimator). Nagle actuation is inert on the statically pinned
    // upstreams.
    let tick = Nanos::from_millis(1);
    let controllers = (0..k)
        .map(|j| {
            let seed = cfg.seed ^ 0xD ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let toggler = EpsilonGreedy::new(Objective::MinLatency, 0.01, 8, 0.5, seed).with_settle(3);
            let plane = ControlPlane::new(toggler, 8);
            TickController::new(shield(plane, None), tick)
        })
        .collect();
    // Peer-state validation on every registry: after a shard crash the
    // replacement connection's exchanges carry a new epoch, and the back
    // registry must resynchronize rather than difference counters across
    // the wipe.
    let driver =
        ProxyDriver::new(Unit::Bytes, controllers).with_validation(ValidateConfig::default());

    let shard_hosts_ids: Vec<HostId> = (0..k).map(|j| HostId::from_index(n + 1 + j)).collect();
    let mut proxy = ProxyApp::new(cfg.profile.app, upstream_tcp, shard_hosts_ids, router.clone())
        .with_driver(driver);
    let retry = FailoverRunConfig::retry_config();
    proxy = match cfg.arm {
        FailoverArm::NoDefense => proxy,
        FailoverArm::TimeoutOnly => proxy.with_resilience(Resilience::timeout_only(retry)),
        FailoverArm::Retry => proxy.with_resilience(Resilience::with_retries(retry)),
        FailoverArm::Full => proxy.with_resilience(Resilience::full(
            retry,
            FailoverRunConfig::breaker_config(),
        )),
    };

    let shards: Vec<RedisServer> = (0..k).map(|_| RedisServer::new(cfg.profile.app)).collect();

    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId::from_index(i),
                CpuContext::with_multiplier("client-app", cfg.profile.client_app_multiplier),
                CpuContext::new("client-softirq"),
                cfg.profile.client_stack,
                front_tcp,
            )
        })
        .collect();
    let proxy_host = Host::new(
        HostId::from_index(n),
        CpuContext::new("proxy-app"),
        CpuContext::new("proxy-softirq"),
        cfg.profile.client_stack,
        front_tcp,
    );
    let shard_hosts: Vec<Host> = (0..k)
        .map(|j| {
            Host::new(
                HostId::from_index(n + 1 + j),
                CpuContext::new("shard-app"),
                CpuContext::new("shard-softirq"),
                cfg.profile.server_stack,
                shard_tcp,
            )
        })
        .collect();

    let back_link = LinkConfig {
        propagation: Nanos::from_micros(80),
        ..LinkConfig::default()
    };
    let mut sim = TierSim::two_tier_with_faults(
        clients,
        proxy,
        shards,
        client_hosts,
        proxy_host,
        shard_hosts,
        LinkConfig::default(),
        back_link,
        cfg.seed,
        fault_config(cfg, hot_shard, cold_shard),
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);

    let mut events = run(&mut sim, &mut queue, cfg.warmup);
    events += run(&mut sim, &mut queue, end);
    events += run(&mut sim, &mut queue, end + Nanos::from_millis(20));

    let mut hist = Histogram::new();
    for lg in &sim.clients {
        hist.merge(&lg.hist);
    }
    let achieved_rps: f64 = sim.clients.iter().map(|lg| lg.achieved_rps()).sum();
    let dedup_hits: u64 = (0..k).map(|j| sim.shards[j].kv().dedup_hits()).sum();
    let shard_crashes = sim.fault_plan().map(|p| p.shard_crashes()).unwrap_or(0);
    let endpoint_restarts = sim.fault_plan().map(|p| p.restarts()).unwrap_or(0);
    let back_epoch_changes = sim
        .proxy
        .driver
        .as_ref()
        .map(|d| {
            (0..k)
                .map(|j| d.back_validation_stats(j).epoch_changes)
                .sum()
        })
        .unwrap_or(0);

    let stats = &sim.proxy.stats;
    let (retries, hedges, budget_denied) = sim
        .proxy
        .retry_policy()
        .map(|p| (p.retries(), p.hedges(), p.budget_denied()))
        .unwrap_or((0, 0, 0));

    FailoverPointResult {
        offered_rps: cfg.workload.rate_rps,
        achieved_rps,
        measured_mean: hist.mean(),
        measured_p50: hist.p50(),
        measured_p99: hist.p99(),
        samples: hist.count(),
        hot_shard,
        cold_shard,
        per_shard_requests: stats.per_shard.clone(),
        shard_crashes,
        endpoint_restarts,
        back_epoch_changes,
        upstream_resets: stats.upstream_resets,
        timeouts: stats.timeouts,
        failed: stats.failed,
        retries,
        hedges,
        budget_denied,
        breaker_trips: sim.proxy.breaker_trips(),
        failovers: stats.failovers,
        orphan_responses: stats.orphan_responses,
        dedup_hits,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(arm: FailoverArm, scenario: Option<FailoverScenario>) -> FailoverRunConfig {
        let mut cfg = FailoverRunConfig::new(WorkloadSpec::shard(8_000.0), arm, scenario);
        cfg.num_clients = 2;
        cfg.num_shards = 3;
        cfg.warmup = Nanos::from_millis(50);
        cfg.measure = Nanos::from_millis(250);
        cfg
    }

    #[test]
    fn oracle_run_is_healthy_and_quiet() {
        let r = run_failover_point(&smoke_cfg(FailoverArm::Full, None));
        assert!(r.samples > 500, "only {} samples", r.samples);
        assert!(r.achieved_rps > 0.8 * r.offered_rps);
        assert_eq!(r.shard_crashes, 0);
        assert_eq!(r.upstream_resets, 0);
        assert_eq!(r.failed, 0, "oracle must not fail requests");
    }

    #[test]
    fn crash_collapses_the_naive_proxy_but_not_the_full_stack() {
        let naive = run_failover_point(&smoke_cfg(
            FailoverArm::NoDefense,
            Some(FailoverScenario::CrashHot),
        ));
        let full = run_failover_point(&smoke_cfg(
            FailoverArm::Full,
            Some(FailoverScenario::CrashHot),
        ));
        let oracle = run_failover_point(&smoke_cfg(FailoverArm::Full, None));
        assert_eq!(naive.shard_crashes, 1);
        assert_eq!(full.shard_crashes, 1);
        assert!(full.upstream_resets >= 1);
        // The naive proxy loses the hot shard's traffic for good.
        assert!(
            naive.achieved_rps < 0.7 * oracle.achieved_rps,
            "naive goodput {} vs oracle {}",
            naive.achieved_rps,
            oracle.achieved_rps
        );
        // The full stack recovers to near-oracle goodput.
        assert!(
            full.achieved_rps > 0.9 * oracle.achieved_rps,
            "full goodput {} vs oracle {}",
            full.achieved_rps,
            oracle.achieved_rps
        );
    }

    #[test]
    fn brownout_exercises_retries_and_hedges() {
        let r = run_failover_point(&smoke_cfg(
            FailoverArm::Full,
            Some(FailoverScenario::BrownoutCold),
        ));
        assert!(r.timeouts + r.hedges > 0, "fault plan never bit");
        assert!(
            r.retries + r.hedges > 0,
            "defense never engaged: {r:?}"
        );
    }

    #[test]
    fn shard_crash_resyncs_the_back_leg_epoch() {
        let oracle = run_failover_point(&smoke_cfg(FailoverArm::Full, None));
        assert_eq!(
            oracle.back_epoch_changes, 0,
            "no crash, no new counter generation"
        );
        let crashed = run_failover_point(&smoke_cfg(
            FailoverArm::Full,
            Some(FailoverScenario::CrashHot),
        ));
        // The replacement upstream announces a fresh epoch; the proxy's
        // back registry resynchronizes instead of differencing counters
        // across the wipe.
        assert!(
            crashed.back_epoch_changes > 0,
            "back leg never saw the crashed shard's new epoch: {crashed:?}"
        );
    }

    #[test]
    fn endpoint_restart_chaos_composes_with_shard_crash() {
        let mut cfg = smoke_cfg(FailoverArm::Full, Some(FailoverScenario::CrashHot));
        cfg.client_restart = Some(RestartSchedule {
            first_at: cfg.warmup + Nanos::from_millis(40),
            period: Nanos::from_millis(80),
        });
        let a = run_failover_point(&cfg);
        assert_eq!(a.shard_crashes, 1, "the shard fault still fires");
        assert!(a.endpoint_restarts > 0, "the client fault still fires");
        assert!(a.samples > 500, "clients keep measuring through both");
        // Composing the two chaos kinds stays deterministic: each draws
        // from its own named stream.
        let b = run_failover_point(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.measured_p99, b.measured_p99);
        assert_eq!(a.endpoint_restarts, b.endpoint_restarts);
    }

    #[test]
    fn crash_cell_replays_bit_identically() {
        let cfg = smoke_cfg(FailoverArm::Full, Some(FailoverScenario::CrashHot));
        let a = run_failover_point(&cfg);
        let b = run_failover_point(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.measured_p99, b.measured_p99);
        assert_eq!(a.per_shard_requests, b.per_shard_requests);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.hedges, b.hedges);
        assert_eq!(a.breaker_trips, b.breaker_trips);
    }
}
