//! Running one two-tier (sharded proxy) experiment point.
//!
//! The star harness ([`crate::runner`]) measures one leg; this one
//! measures the composed path of the datacenter topology: N load
//! generators fan into a [`ProxyApp`](crate::proxy::ProxyApp) which
//! routes by key over K [`RedisServer`] shards. The proxy runs the
//! estimation machinery on *both* legs and composes them per shard
//! (client→proxy + proxy→shard, Figure 3 terms summed), so the run
//! reports a per-shard service-level estimate — the signal that lets a
//! per-shard control plane treat a hot shard differently from its idle
//! neighbours.
//!
//! The workload is deliberately skewed: a configurable fraction of
//! requests draw keys owned by one *hot* shard (chosen as the shard
//! owning the largest slice of the key space), the rest spread over the
//! cold shards. The interesting comparison is [`ShardSetting::Corner`]
//! (one global static batching choice for every upstream) against
//! [`ShardSetting::Adaptive`] (per-shard planes free to batch the hot
//! upstream while leaving cold ones latency-optimal).

use batchpolicy::{ControlPlane, EpsilonGreedy, Objective, TickController};
use littles::Nanos;
use simnet::{run, CpuContext, EventQueue, Histogram, LinkConfig, Pcg32};
use tcpsim::{Host, HostId, NagleMode, TierSim, Unit};

use crate::cost::CostProfile;
use crate::driver::ProxyDriver;
use crate::loadgen::{KeyPool, LancetClient};
use crate::proxy::{ProxyApp, ShardRouter};
use crate::runner::{shield, tcp_config, CpuUtil, Overrides};
use crate::server::RedisServer;
use crate::workload::WorkloadSpec;

/// How the proxy's upstream (proxy → shard) batching is controlled. The
/// client → proxy leg stays `TCP_NODELAY` in every arm so the comparison
/// isolates the knob under study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardSetting {
    /// One static choice applied to every upstream connection.
    Corner {
        /// Nagle enabled on every upstream.
        nagle: bool,
    },
    /// Per-shard control planes at the proxy, each deciding on its
    /// shard's back-leg estimate (the leg the knob controls) while the
    /// composed two-leg estimate provides the service-level ranking.
    Adaptive {
        /// The optimization objective.
        objective: Objective,
    },
}

/// Everything that defines one two-tier experiment point.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunConfig {
    /// The aggregate workload (rate split evenly across clients; keys
    /// drawn from the skewed pool, not the round-robin walk).
    pub workload: WorkloadSpec,
    /// CPU cost profile (clients and the proxy use the client stack —
    /// the proxy is a lean router — shards the server stack).
    pub profile: CostProfile,
    /// Upstream batching control.
    pub setting: ShardSetting,
    /// Warmup duration (excluded from measurement).
    pub warmup: Nanos,
    /// Measurement duration.
    pub measure: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Client hosts fanning into the proxy.
    pub num_clients: usize,
    /// Shard hosts behind the proxy.
    pub num_shards: usize,
    /// Fraction of requests drawing keys owned by the hot shard.
    pub hot_fraction: f64,
}

impl ShardRunConfig {
    /// A standard two-tier run: 4 clients, 4 shards, 70% hot traffic,
    /// 200 ms warmup, 800 ms measurement.
    pub fn new(workload: WorkloadSpec, setting: ShardSetting) -> Self {
        ShardRunConfig {
            workload,
            profile: CostProfile::shard_tier(),
            setting,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(800),
            seed: 0x5AAD,
            num_clients: 4,
            num_shards: 4,
            hot_fraction: 0.7,
        }
    }
}

/// The result of one two-tier run.
#[derive(Debug, Clone)]
pub struct ShardPointResult {
    /// Offered aggregate load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput across every client.
    pub achieved_rps: f64,
    /// Measured mean end-to-end latency (client arrival → response
    /// processed, both legs included).
    pub measured_mean: Option<Nanos>,
    /// Measured median latency.
    pub measured_p50: Option<Nanos>,
    /// Measured 99th-percentile latency.
    pub measured_p99: Option<Nanos>,
    /// Latency samples in the window.
    pub samples: u64,
    /// The shard owning the hot key pool.
    pub hot_shard: usize,
    /// Commands the proxy routed to each shard.
    pub per_shard_requests: Vec<u64>,
    /// Mean composed (two-leg) estimated latency per shard over the
    /// measurement window.
    pub shard_estimates: Vec<Option<Nanos>>,
    /// Measured back-leg (proxy → shard) round-trip p99 per shard, over
    /// the whole run including warmup — the ground truth behind the
    /// back-leg estimates.
    pub shard_rtt_p99: Vec<Option<Nanos>>,
    /// Fraction of estimation windows in which the hot shard's composed
    /// estimate ranked highest across shards — the "can the estimate
    /// find the hot shard" acceptance metric.
    pub hot_rank_fraction: Option<f64>,
    /// Fraction of plane decisions with batching on, per shard
    /// (meaningful for [`ShardSetting::Adaptive`]; the planes still run,
    /// inert, in corner arms).
    pub shard_on_fraction: Vec<f64>,
    /// Each shard plane's learned (off, on) arm scores at the end of the
    /// run (negated µs under `MinLatency`; `None` = arm never scored).
    pub shard_arm_scores: Vec<(Option<f64>, Option<f64>)>,
    /// Proxy-host CPU utilization over the window.
    pub proxy_cpu: CpuUtil,
    /// Simulator events processed.
    pub events: u64,
}

/// Partitions the workload's key indices by routed shard; returns
/// per-shard index lists.
fn partition_keys(spec: &WorkloadSpec, router: &ShardRouter) -> Vec<Vec<u64>> {
    let mut owned: Vec<Vec<u64>> = vec![Vec::new(); router.num_shards()];
    for idx in 0..spec.key_space as u64 {
        let key = format!("key:{idx:012}");
        owned[router.route(key.as_bytes())].push(idx);
    }
    owned
}

/// Executes one two-tier experiment point.
pub fn run_shard_point(cfg: &ShardRunConfig) -> ShardPointResult {
    let n = cfg.num_clients;
    let k = cfg.num_shards;
    assert!(n > 0, "a run needs at least one client");
    assert!(k > 1, "skew needs at least two shards");

    let ov = Overrides::default();
    // Front leg pinned NODELAY in every arm; only the upstream mode
    // varies (Dynamic so per-shard planes can actuate, or a static pin).
    let front_tcp = tcp_config(NagleMode::Off, &ov);
    let upstream_mode = match cfg.setting {
        ShardSetting::Corner { nagle: true } => NagleMode::On,
        ShardSetting::Corner { nagle: false } => NagleMode::Off,
        ShardSetting::Adaptive { .. } => NagleMode::Dynamic,
    };
    let upstream_tcp = tcp_config(upstream_mode, &ov);
    // Shards answer with NODELAY in every arm: the knob under study is
    // the proxy's request batching, not the shard's response batching.
    let shard_tcp = tcp_config(NagleMode::Off, &ov);

    // Key → shard ownership and the hot/cold split. The hot shard is the
    // one owning the largest slice (deterministic in the seed).
    let router = ShardRouter::new(k, cfg.seed);
    let owned = partition_keys(&cfg.workload, &router);
    let hot_shard = owned
        .iter()
        .enumerate()
        .max_by_key(|(_, keys)| keys.len())
        .map(|(s, _)| s)
        .expect("at least one shard");
    let hot: Vec<u64> = owned[hot_shard].clone();
    let cold: Vec<u64> = owned
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != hot_shard)
        .flat_map(|(_, keys)| keys.iter().copied())
        .collect();

    // The skew stream: one named construction, forked per client so the
    // draws never perturb arrival/value RNG sequences.
    let mut skew_rng = Pcg32::named(cfg.seed, "shard.skew");

    let mut spec = cfg.workload;
    spec.rate_rps = cfg.workload.rate_rps / n as f64;
    let end = cfg.warmup + cfg.measure;

    let clients: Vec<LancetClient> = (0..n)
        .map(|_| {
            LancetClient::new(spec, cfg.profile.app, front_tcp, cfg.warmup, end).with_key_pool(
                KeyPool::new(hot.clone(), cold.clone(), cfg.hot_fraction, skew_rng.fork()),
            )
        })
        .collect();

    // Per-shard planes: Nagle bandits seeded independently per shard
    // (0xD keeps the streams disjoint from the star harness's client
    // policies at 0xC and listener at 0x5). In corner arms the identical
    // machinery runs but its Nagle actuation is inert on statically
    // pinned sockets — every arm pays the same estimation overhead.
    let objective = match cfg.setting {
        ShardSetting::Adaptive { objective } => objective,
        ShardSetting::Corner { .. } => Objective::MinLatency,
    };
    let tick = Nanos::from_millis(1);
    let controllers = (0..k)
        .map(|j| {
            let seed = cfg.seed ^ 0xD ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Calmer than the star harness's client planes (ε .05, dwell
            // 4, α .4): a wrong arm on a saturated shard is catastrophic,
            // so the per-shard bandits explore rarely, dwell longer, and
            // smooth harder — the per-window signal between arms is tens
            // of µs against comparable sampling noise on a sparse
            // upstream. The settle period keeps post-switch windows
            // (still dominated by the previous arm's traffic) from being
            // credited to the new arm.
            let toggler =
                EpsilonGreedy::new(objective, 0.01, 8, 0.5, seed).with_settle(3);
            let plane = ControlPlane::new(toggler, 8);
            TickController::new(shield(plane, None), tick)
        })
        .collect();
    let driver = ProxyDriver::new(Unit::Bytes, controllers);

    let shard_hosts_ids: Vec<HostId> = (0..k).map(|j| HostId::from_index(n + 1 + j)).collect();
    let proxy = ProxyApp::new(cfg.profile.app, upstream_tcp, shard_hosts_ids, router.clone())
        .with_driver(driver);

    let shards: Vec<RedisServer> = (0..k).map(|_| RedisServer::new(cfg.profile.app)).collect();

    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId::from_index(i),
                CpuContext::with_multiplier("client-app", cfg.profile.client_app_multiplier),
                CpuContext::new("client-softirq"),
                cfg.profile.client_stack,
                front_tcp,
            )
        })
        .collect();
    // The proxy runs the lean client stack: it is an L7 router, not a
    // store — parse, hash, re-frame. Keeping it off the critical path
    // lets the back-leg queueing (the hot *shard's* backlog) dominate
    // each shard's composed estimate instead of shared proxy read delay.
    let proxy_host = Host::new(
        HostId::from_index(n),
        CpuContext::new("proxy-app"),
        CpuContext::new("proxy-softirq"),
        cfg.profile.client_stack,
        front_tcp, // accept config for client-facing connections
    );
    let shard_hosts: Vec<Host> = (0..k)
        .map(|j| {
            Host::new(
                HostId::from_index(n + 1 + j),
                CpuContext::new("shard-app"),
                CpuContext::new("shard-softirq"),
                cfg.profile.server_stack,
                shard_tcp, // accept config for the proxy's upstreams
            )
        })
        .collect();

    // The back leg crosses the fabric (proxy and shards sit in different
    // racks), so its propagation is real: a Nagle hold on an upstream
    // waits a full ACK round trip. That is what makes the knob a genuine
    // per-shard tradeoff — on a sparse cold upstream a held request eats
    // the round trip for nothing, while on the hot upstream the same hold
    // window coalesces several requests into one delivery and spares the
    // shard's receive path.
    let back_link = LinkConfig {
        propagation: Nanos::from_micros(80),
        ..LinkConfig::default()
    };
    let mut sim = TierSim::two_tier(
        clients,
        proxy,
        shards,
        client_hosts,
        proxy_host,
        shard_hosts,
        LinkConfig::default(),
        back_link,
        cfg.seed,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);

    let mut events = run(&mut sim, &mut queue, cfg.warmup);
    let proxy_snap = (
        sim.proxy_host().app_cpu.busy_snapshot(queue.now()),
        sim.proxy_host().softirq_cpu.busy_snapshot(queue.now()),
    );
    events += run(&mut sim, &mut queue, end);
    events += run(&mut sim, &mut queue, end + Nanos::from_millis(20));

    let (from, to) = (cfg.warmup, end);
    let proxy_cpu = CpuUtil {
        app: sim.proxy_host().app_cpu.utilization_since(&proxy_snap.0, to),
        softirq: sim
            .proxy_host()
            .softirq_cpu
            .utilization_since(&proxy_snap.1, to),
    };

    let mut hist = Histogram::new();
    for lg in &sim.clients {
        hist.merge(&lg.hist);
    }
    let achieved_rps: f64 = sim.clients.iter().map(|lg| lg.achieved_rps()).sum();

    let driver = sim.proxy.driver.as_ref().expect("driver attached above");
    let shard_estimates: Vec<Option<Nanos>> = (0..k)
        .map(|j| driver.shard_mean_latency_in(j, from, to))
        .collect();
    let shard_on_fraction: Vec<f64> = (0..k).map(|j| driver.on_fraction(j)).collect();
    let shard_arm_scores: Vec<(Option<f64>, Option<f64>)> = (0..k)
        .map(|j| {
            let p = driver.plane(j);
            (p.nagle_arm_score(false), p.nagle_arm_score(true))
        })
        .collect();

    // Rank the hot shard per estimation window. The per-shard series are
    // produced by the same proxy tick, so entries align by timestamp;
    // walk windows where every shard reported inside [from, to).
    let hot_rank_fraction = {
        let series: Vec<_> = (0..k).map(|j| &driver.shard_series[j]).collect();
        let windows = series.iter().map(|s| s.len()).min().unwrap_or(0);
        let mut ranked = 0u64;
        let mut total = 0u64;
        for w in 0..windows {
            let at = series[0][w].0;
            if at < from || at >= to {
                continue;
            }
            total += 1;
            let hot_latency = series[hot_shard][w].1.smoothed_latency;
            if (0..k).all(|j| j == hot_shard || series[j][w].1.smoothed_latency < hot_latency) {
                ranked += 1;
            }
        }
        (total > 0).then(|| ranked as f64 / total as f64)
    };

    ShardPointResult {
        offered_rps: cfg.workload.rate_rps,
        achieved_rps,
        measured_mean: hist.mean(),
        measured_p50: hist.p50(),
        measured_p99: hist.p99(),
        samples: hist.count(),
        hot_shard,
        per_shard_requests: sim.proxy.stats.per_shard.clone(),
        shard_estimates,
        shard_rtt_p99: sim.proxy.stats.back_rtt.iter().map(|h| h.p99()).collect(),
        hot_rank_fraction,
        shard_on_fraction,
        shard_arm_scores,
        proxy_cpu,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(setting: ShardSetting) -> ShardRunConfig {
        let mut cfg = ShardRunConfig::new(WorkloadSpec::shard(8_000.0), setting);
        cfg.num_clients = 2;
        cfg.num_shards = 2;
        cfg.warmup = Nanos::from_millis(50);
        cfg.measure = Nanos::from_millis(150);
        cfg
    }

    #[test]
    fn corner_point_serves_skewed_traffic() {
        let r = run_shard_point(&smoke_cfg(ShardSetting::Corner { nagle: false }));
        assert!(r.samples > 500, "only {} samples", r.samples);
        assert!(r.achieved_rps > 0.5 * r.offered_rps);
        // Every shard saw traffic, and the hot one saw the most.
        assert!(r.per_shard_requests.iter().all(|&c| c > 0));
        let max = r
            .per_shard_requests
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(s, _)| s)
            .unwrap();
        assert_eq!(max, r.hot_shard);
    }

    #[test]
    fn adaptive_point_runs_per_shard_planes() {
        let r = run_shard_point(&smoke_cfg(ShardSetting::Adaptive {
            objective: Objective::MinLatency,
        }));
        assert!(r.samples > 500, "only {} samples", r.samples);
        assert_eq!(r.shard_on_fraction.len(), 2);
        assert!(r.shard_estimates.iter().all(|e| e.is_some()));
        assert!(r.hot_rank_fraction.is_some());
    }

    #[test]
    fn replay_is_bit_identical() {
        let cfg = smoke_cfg(ShardSetting::Corner { nagle: true });
        let a = run_shard_point(&cfg);
        let b = run_shard_point(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.measured_p99, b.measured_p99);
        assert_eq!(a.per_shard_requests, b.per_shard_requests);
    }
}
