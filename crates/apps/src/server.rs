//! The Redis-like key-value server.
//!
//! Single application thread, epoll-style event loop: a readability wakeup
//! schedules one processing pass on the app CPU; the pass reads everything
//! available, executes every complete request, and writes the responses.
//! Under load, several requests are handled per wakeup — the
//! "adaptive batching" of requests that IX performs and the paper's
//! Figure 1 models (per-batch cost amortized over the batch).
//!
//! Like Redis, the server disables Nagle by default; experiments override
//! this through [`TcpConfig::nagle`](tcpsim::TcpConfig) on the accept
//! configuration, including the `Dynamic` mode driven by an attached
//! [`PolicyDriver`].

use std::collections::BTreeMap;

use littles::Nanos;
use simnet::Histogram;
use tcpsim::{App, HostCtx, SocketId, Unit, WakeReason};

use crate::cost::AppCosts;
use crate::driver::{HintRecorder, ListenerDriver, ListenerPlaneDriver};
use crate::kv::KvStore;
use crate::resp::{encode_response, Command, CommandParser};

const TOKEN_KIND_SHIFT: u32 = 32;
const KIND_PROCESS: u64 = 1;
const KIND_TICK: u64 = 2;
const KIND_FLUSH: u64 = 3;

fn token(kind: u64, sock: usize) -> u64 {
    (kind << TOKEN_KIND_SHIFT) | sock as u64
}

struct Conn {
    parser: CommandParser,
    call_pending: bool,
    /// Responses (or response tails) awaiting send-buffer space.
    out_backlog: std::collections::VecDeque<Vec<u8>>,
    flush_pending: bool,
}

impl Conn {
    fn new() -> Self {
        Conn {
            parser: CommandParser::new(),
            call_pending: false,
            out_backlog: std::collections::VecDeque::new(),
            flush_pending: false,
        }
    }
}

/// Per-run server statistics.
#[derive(Debug, Default, Clone)]
pub struct ServerStats {
    /// Requests executed.
    pub requests: u64,
    /// Processing passes (app wakeup batches).
    pub batches: u64,
    /// Largest number of requests handled in one pass.
    pub max_batch: u64,
}

/// The Redis-like server application.
pub struct RedisServer {
    costs: AppCosts,
    kv: KvStore,
    /// Live connections, keyed by socket id. BTreeMap, not HashMap: the
    /// tick path iterates connections, and simulation state must iterate
    /// in a deterministic order.
    conns: BTreeMap<usize, Conn>,
    /// Request-batch size distribution (requests per processing pass).
    pub batch_hist: Histogram,
    /// Aggregate statistics.
    pub stats: ServerStats,
    /// Optional listener-wide dynamic-batching policy: one aggregate
    /// decision per tick, applied to every connection.
    pub policy: Option<ListenerDriver>,
    /// Optional listener-wide multi-knob control plane: one aggregate
    /// decision per tick, every knob applied to every connection.
    pub plane: Option<ListenerPlaneDriver>,
    /// Per-connection hint-based estimate recording (paper §3.3), when
    /// enabled via [`with_hint_recorder`](RedisServer::with_hint_recorder).
    pub hint_recorders: BTreeMap<usize, HintRecorder>,
    hints_enabled: bool,
    tick_period: Nanos,
}

impl RedisServer {
    /// Creates a server with the given application costs.
    pub fn new(costs: AppCosts) -> Self {
        RedisServer {
            costs,
            kv: KvStore::new(),
            conns: BTreeMap::new(),
            batch_hist: Histogram::new(),
            stats: ServerStats::default(),
            policy: None,
            plane: None,
            hint_recorders: BTreeMap::new(),
            hints_enabled: false,
            tick_period: Nanos::from_micros(500),
        }
    }

    /// Attaches a listener-wide dynamic-Nagle policy (requires the accept
    /// configuration to use [`NagleMode::Dynamic`](tcpsim::NagleMode)).
    pub fn with_policy(mut self, policy: ListenerDriver) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a listener-wide multi-knob control plane (requires the
    /// accept configuration to use [`NagleMode::Dynamic`](tcpsim::NagleMode)).
    pub fn with_plane(mut self, plane: ListenerPlaneDriver) -> Self {
        self.plane = Some(plane);
        self
    }

    /// Enables hint-based estimation recording (one recorder per
    /// connection, created on accept).
    pub fn with_hint_recorder(mut self) -> Self {
        self.hints_enabled = true;
        self
    }

    /// The store (for inspection).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Estimate unit used by the attached policy or plane, if any.
    pub fn policy_unit(&self) -> Option<Unit> {
        self.policy
            .as_ref()
            .map(|p| p.unit)
            .or_else(|| self.plane.as_ref().map(|p| p.unit))
    }

    /// Mean hint-estimated latency pooled over every connection's
    /// recorder in `[from, to)`.
    pub fn hint_mean_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        let vals: Vec<u64> = self
            .hint_recorders
            .values()
            .flat_map(|r| r.series.iter())
            .filter(|(at, e)| *at >= from && *at < to && e.latency.is_some())
            .map(|(_, e)| e.latency.expect("filtered").as_nanos())
            .collect();
        (!vals.is_empty())
            .then(|| Nanos::from_nanos(vals.iter().sum::<u64>() / vals.len() as u64))
    }

    /// Writes a response, stashing whatever the send buffer rejects so
    /// the byte stream stays intact under backpressure (flushed on
    /// `Writable`).
    fn send_or_backlog(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, wire: Vec<u8>) {
        let conn = self.conns.entry(sock.0).or_insert_with(Conn::new);
        if conn.out_backlog.is_empty() {
            let sent = ctx.send(sock, &wire);
            if sent < wire.len() {
                let conn = self.conns.get_mut(&sock.0).expect("conn");
                conn.out_backlog.push_back(wire[sent..].to_vec());
            }
        } else {
            conn.out_backlog.push_back(wire);
        }
    }

    /// Drains the write backlog as far as the send buffer allows.
    fn flush(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(Conn::new);
        conn.flush_pending = false;
        while let Some(front) = self
            .conns
            .get_mut(&sock.0)
            .expect("conn")
            .out_backlog
            .front_mut()
        {
            let sent = ctx.send(sock, front);
            let done = sent == front.len();
            let conn = self.conns.get_mut(&sock.0).expect("conn");
            let front = conn.out_backlog.front_mut().expect("non-empty");
            if !done {
                front.drain(..sent);
                break;
            }
            conn.out_backlog.pop_front();
        }
    }

    fn process(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        let conn = self.conns.entry(sock.0).or_insert_with(Conn::new);
        conn.call_pending = false;
        let (data, _msgs) = ctx.recv(sock, usize::MAX);
        let conn = self.conns.get_mut(&sock.0).expect("just inserted");
        conn.parser.feed(&data);

        let mut batch = 0u64;
        while let Some(cmd) = self.conns.get_mut(&sock.0).expect("conn").parser.next_command() {
            let payload = match &cmd {
                Command::Set { key, value, .. } => key.len() + value.len(),
                Command::Get { key, .. } => key.len(),
            };
            ctx.charge_app(self.costs.server_request(payload));
            let resp = self.kv.execute(cmd);
            let wire = encode_response(&resp);
            self.send_or_backlog(ctx, sock, wire);
            batch += 1;
        }
        if batch > 0 {
            // The per-pass cost β (charged once, amortized over the batch).
            ctx.charge_app(self.costs.server_batch_base);
            self.stats.requests += batch;
            self.stats.batches += 1;
            self.stats.max_batch = self.stats.max_batch.max(batch);
            self.batch_hist.record(Nanos::from_nanos(batch));
        }
    }
}

impl App for RedisServer {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        if self.policy.is_some() || self.plane.is_some() || self.hints_enabled {
            ctx.call_after(self.tick_period, token(KIND_TICK, 0));
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, reason: WakeReason) {
        match reason {
            WakeReason::Accepted => {
                self.conns.insert(sock.0, Conn::new());
            }
            WakeReason::Readable => {
                let conn = self.conns.entry(sock.0).or_insert_with(Conn::new);
                if !conn.call_pending {
                    conn.call_pending = true;
                    ctx.wake_app_thread(token(KIND_PROCESS, sock.0));
                }
            }
            WakeReason::Writable => {
                let conn = self.conns.entry(sock.0).or_insert_with(Conn::new);
                if !conn.out_backlog.is_empty() && !conn.flush_pending {
                    conn.flush_pending = true;
                    let at = ctx.app_free_at();
                    ctx.call_at(at, token(KIND_FLUSH, sock.0));
                }
            }
            _ => {}
        }
    }

    fn on_call(&mut self, ctx: &mut HostCtx<'_>, tok: u64) {
        let kind = tok >> TOKEN_KIND_SHIFT;
        let sock = SocketId((tok & 0xFFFF_FFFF) as usize);
        match kind {
            KIND_PROCESS => self.process(ctx, sock),
            KIND_FLUSH => self.flush(ctx, sock),
            KIND_TICK => {
                // Sorted connection order (BTreeMap) keeps the tick path
                // deterministic however many connections fan in.
                let socks: Vec<SocketId> = self.conns.keys().map(|&s| SocketId(s)).collect();
                if self.hints_enabled {
                    for &s in &socks {
                        self.hint_recorders
                            .entry(s.0)
                            .or_default()
                            .tick(ctx, s);
                    }
                }
                if let Some(policy) = self.policy.as_mut() {
                    // One listener-wide decision over the aggregate, not
                    // one per connection.
                    policy.tick(ctx, &socks);
                }
                if let Some(plane) = self.plane.as_mut() {
                    plane.tick(ctx, &socks);
                }
                ctx.call_after(self.tick_period, token(KIND_TICK, 0));
            }
            other => panic!("unknown server token kind {other}"),
        }
    }
}
