//! Running one experiment point: one (workload, configuration) pair.
//!
//! A [`RunConfig`] fully describes a run — workload, cost profile, Nagle
//! setting, hint usage, durations, seed — and [`run_point`] executes it,
//! returning a serializable [`PointResult`] with measured latency,
//! achieved throughput, every estimator's view, CPU utilizations, and
//! packet counts. All figure experiments and many integration tests are
//! thin wrappers over this.

use batchpolicy::{
    AimdBatchLimit, BreakerConfig, CircuitBreaker, ControlPlane, DelAckToggler, EpsilonGreedy,
    Objective, TickController,
};
use e2e_core::{DelaySet, Estimate, MultiConnectionAggregator, ValidateConfig, ValidateStats};
use littles::Nanos;
use simnet::{run, CpuContext, EventQueue, FaultConfig, FaultCounters, Histogram, LinkConfig};
use tcpsim::config::ExchangeConfig;
use tcpsim::{Host, HostId, NagleMode, NetSim, TcpConfig, Unit};

use crate::cost::CostProfile;
use crate::driver::{
    AimdDriver, EstimateRecorder, ListenerDriver, ListenerPlaneDriver, PlaneDriver, PolicyDriver,
};
use crate::loadgen::LancetClient;
use crate::server::RedisServer;
use crate::workload::WorkloadSpec;

/// How batching is controlled during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NagleSetting {
    /// `TCP_NODELAY` everywhere (the Redis default).
    Off,
    /// Nagle enabled on both endpoints.
    On,
    /// Nagle enabled only at the server (toggling Redis's own setting,
    /// as Figure 2 does), client stays `TCP_NODELAY`.
    ServerOnly,
    /// Toggled dynamically by per-endpoint ε-greedy policies under the
    /// given objective.
    Dynamic {
        /// The optimization objective.
        objective: Objective,
    },
    /// Nagle replaced by the §5 gradual batching limit, adapted with AIMD
    /// under the given objective (client side; the server keeps
    /// `TCP_NODELAY`).
    AimdLimit {
        /// The optimization objective.
        objective: Objective,
    },
    /// One static corner of the multi-knob cube, pinned on both
    /// endpoints for the whole run: Nagle on/off × delayed ACKs
    /// on/off (off = quick-ack) × a fixed two-MSS cork limit on/off.
    /// The eight corners are the static baselines the adaptive control
    /// plane competes against.
    Corner {
        /// Nagle enabled.
        nagle: bool,
        /// Delayed ACKs enabled (`false` = quick-ack every segment).
        delayed_ack: bool,
        /// A fixed cork limit of two MSS (`false` = no limit).
        cork: bool,
    },
    /// The multi-knob control plane: per-endpoint [`ControlPlane`]s
    /// route the estimate's per-queue components to a Nagle toggler and,
    /// optionally, delayed-ACK and cork-limit controllers, with
    /// coordinated exploration. With `delack` and `cork` both false this
    /// is the Nagle-only plane — bit-identical to
    /// [`Dynamic`](NagleSetting::Dynamic).
    Plane {
        /// The optimization objective.
        objective: Objective,
        /// Attach the adaptive delayed-ACK controller.
        delack: bool,
        /// Attach the adaptive cork-limit controller.
        cork: bool,
    },
}

/// Optional stack/policy overrides for ablation studies (§5 knobs). All
/// `None` means the calibrated defaults.
#[derive(Debug, Clone, Copy, PartialEq, Default)] // lint:allow(float-eq): bit-exact equality is intended — determinism tests pin exact values
pub struct Overrides {
    /// Metadata-exchange minimum interval.
    pub exchange_interval: Option<Nanos>,
    /// Dynamic-policy decision period (the toggling granularity).
    pub policy_tick: Option<Nanos>,
    /// Per-arm score EWMA weight for the ε-greedy toggler.
    pub score_alpha: Option<f64>,
    /// Force TSO on/off.
    pub tso: Option<bool>,
    /// Force auto-corking on/off.
    pub autocork: Option<bool>,
    /// Delayed-ACK timeout.
    pub delack_timeout: Option<Nanos>,
    /// RTO floor. The Linux-default 200 ms floor dwarfs simulated RTTs, so
    /// chaos runs lower it to keep loss recovery inside the measure
    /// window — uniformly across the compared arms.
    pub min_rto: Option<Nanos>,
    /// RTO ceiling. Exponential backoff against the 60 s default cap can
    /// park a faulted connection for longer than the whole measure
    /// window; chaos runs cap it — uniformly across the compared arms.
    pub max_rto: Option<Nanos>,
}

/// Everything that defines one experiment point.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// The workload.
    pub workload: WorkloadSpec,
    /// CPU cost profile.
    pub profile: CostProfile,
    /// Batching control.
    pub nagle: NagleSetting,
    /// Whether the client forwards `create`/`complete` hints.
    pub use_hints: bool,
    /// Warmup duration (excluded from measurement).
    pub warmup: Nanos,
    /// Measurement duration.
    pub measure: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Concurrent client connections fanning into the server. The offered
    /// rate is split evenly: each client runs an independent open-loop
    /// arrival stream at `workload.rate_rps / num_clients`.
    pub num_clients: usize,
    /// Ablation overrides.
    pub overrides: Overrides,
    /// Fault injection over the star topology (disabled by default, in
    /// which case the run is bit-identical to a fault-free one).
    pub fault: FaultConfig,
    /// Estimator staleness bound: remote windows older than this decay
    /// confidence and eventually trip local-only fallback. `None` trusts
    /// cached windows forever (the pre-fault behaviour).
    pub staleness_bound: Option<Nanos>,
    /// Circuit breaker around the dynamic policies; `None` runs them
    /// unprotected.
    pub breaker: Option<BreakerConfig>,
    /// Peer-state validation: every incoming exchange window is checked
    /// for plausibility before it can influence an estimate. `None`
    /// trusts the wire blindly (the pre-validation behaviour).
    pub validate: Option<ValidateConfig>,
}

impl RunConfig {
    /// A standard run: 200 ms warmup, 800 ms measurement.
    pub fn new(workload: WorkloadSpec, nagle: NagleSetting) -> Self {
        RunConfig {
            workload,
            profile: CostProfile::calibrated(),
            nagle,
            use_hints: true,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(800),
            seed: 0xE2E,
            num_clients: 1,
            overrides: Overrides::default(),
            fault: FaultConfig::default(),
            staleness_bound: None,
            breaker: None,
            validate: None,
        }
    }
}

/// One side's CPU utilizations over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq)] // lint:allow(float-eq): bit-exact equality is intended — determinism tests pin exact values
pub struct CpuUtil {
    /// Application-thread utilization (may exceed 1.0 when oversubscribed).
    pub app: f64,
    /// Softirq-context utilization.
    pub softirq: f64,
}

/// One connection's slice of a multi-connection run.
#[derive(Debug, Clone)]
pub struct ClientResult {
    /// Offered load on this connection (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput on this connection.
    pub achieved_rps: f64,
    /// Latency samples this connection recorded in the window.
    pub samples: u64,
    /// Measured mean latency on this connection.
    pub measured_mean: Option<Nanos>,
    /// Measured 99th-percentile latency on this connection.
    pub measured_p99: Option<Nanos>,
    /// Byte-unit Little's-law estimate on this connection.
    pub estimated_bytes: Option<Nanos>,
    /// Exchanges received by this connection.
    pub exchanges_received: u64,
}

/// The result of one run.
///
/// With `num_clients > 1` the measured latency fields and the achieved
/// rate aggregate over every connection (merged histograms, summed
/// goodput), the `estimated_*` fields are throughput-weighted aggregates
/// across the per-connection estimators, and [`per_client`]
/// (PointResult::per_client) holds each connection's slice. Fields that
/// describe a single client host (`client_cpu`, `srtt`,
/// `client_on_fraction`, `tracker_mean`, `aimd_mean_limit`) report
/// client 0.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Offered load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput (responses/second over the window).
    pub achieved_rps: f64,
    /// Measured mean latency (arrival → response processed).
    pub measured_mean: Option<Nanos>,
    /// Measured median latency.
    pub measured_p50: Option<Nanos>,
    /// Measured 99th-percentile latency.
    pub measured_p99: Option<Nanos>,
    /// Samples in the window.
    pub samples: u64,
    /// Byte-unit Little's-law estimate (the paper's prototype).
    pub estimated_bytes: Option<Nanos>,
    /// Packet-unit estimate.
    pub estimated_packets: Option<Nanos>,
    /// Message-unit (send-syscall) estimate.
    pub estimated_messages: Option<Nanos>,
    /// Hint-based estimate recorded at the server (§3.3).
    pub estimated_hint: Option<Nanos>,
    /// Application-level tracker ground truth (client side).
    pub tracker_mean: Option<Nanos>,
    /// The client's smoothed RTT — the paper's §2 inadequate baseline
    /// (misses application read delays; inflated by delayed ACKs).
    pub srtt: Option<Nanos>,
    /// Client CPU utilization.
    pub client_cpu: CpuUtil,
    /// Server CPU utilization.
    pub server_cpu: CpuUtil,
    /// Wire packets client → server during the whole run.
    pub packets_to_server: u64,
    /// Wire packets server → client.
    pub packets_to_client: u64,
    /// Nagle holds observed (both endpoints).
    pub nagle_holds: u64,
    /// Fraction of dynamic-policy decisions with batching on (client).
    pub client_on_fraction: Option<f64>,
    /// Fraction of dynamic-policy decisions with batching on (server).
    pub server_on_fraction: Option<f64>,
    /// Mean AIMD batch limit over the window (AimdLimit runs only).
    pub aimd_mean_limit: Option<f64>,
    /// Exchanges received across all clients (metadata-exchange health).
    pub exchanges_received: u64,
    /// Concurrent client connections in this run.
    pub num_clients: usize,
    /// Per-connection results, indexed by client.
    pub per_client: Vec<ClientResult>,
    /// Mean server-side listener aggregate estimate over the window
    /// (Dynamic runs only — the `L` the listener-wide policy acted on).
    pub server_aggregate_latency: Option<Nanos>,
    /// Per-link fault-injection counters, indexed like `per_client`
    /// (empty when the run had no fault plan).
    pub link_faults: Vec<FaultCounters>,
    /// Total scheduled link-blackout time overlapping the run.
    pub fault_blackout_time: Nanos,
    /// Circuit-breaker trips at client 0 (Dynamic runs only).
    pub client_breaker_trips: Option<u64>,
    /// Circuit-breaker trips at the server listener (Dynamic runs only).
    pub server_breaker_trips: Option<u64>,
    /// Nagle-arm switches of the server listener's control plane
    /// (Plane runs only).
    pub plane_nagle_switches: Option<u64>,
    /// Delayed-ACK mode switches of the server listener's control plane
    /// (Plane runs only; 0 when the knob is not attached).
    pub plane_delack_switches: Option<u64>,
    /// Cork-limit moves of the server listener's control plane (Plane
    /// runs only; 0 when the knob is not attached).
    pub plane_cork_switches: Option<u64>,
    /// Deliberate exploratory perturbations taken across every knob of
    /// the server listener's control plane (Plane runs only).
    pub plane_explorations: Option<u64>,
    /// The server plane's final cork limit (Plane runs with `cork` only).
    pub plane_cork_limit: Option<u64>,
    /// Merged peer-state validation counters across every estimator in
    /// the run — the per-client recorders, the dynamic-policy recorders,
    /// and the server listener registry (`None` without a validator).
    pub validation: Option<ValidateStats>,
    /// Endpoint restarts the clients observed (socket reset + reconnect).
    pub client_restarts: u64,
    /// Endpoint restarts the fault plan injected.
    pub fault_restarts: u64,
    /// Total simulator events processed across warmup, measurement, and
    /// drain — the denominator of the self-bench's events/sec metric.
    pub events: u64,
}

pub(crate) fn shield<T: batchpolicy::BatchToggler>(
    inner: T,
    breaker: Option<BreakerConfig>,
) -> CircuitBreaker<T> {
    match breaker {
        Some(bc) => CircuitBreaker::new(inner, bc),
        None => CircuitBreaker::disabled(inner),
    }
}

pub(crate) fn tcp_config(nagle: NagleMode, ov: &Overrides) -> TcpConfig {
    let mut config = TcpConfig {
        nagle,
        // Exchange byte- and message-unit counters so one run yields both
        // estimate flavours (§3.3 comparison).
        exchange: ExchangeConfig {
            enabled: true,
            min_interval: ov.exchange_interval.unwrap_or(Nanos::from_micros(500)),
            units: [true, false, true],
        },
        ..TcpConfig::default()
    };
    if let Some(tso) = ov.tso {
        config.tso.enabled = tso;
    }
    if let Some(cork) = ov.autocork {
        config.cork.enabled = cork;
    }
    if let Some(timeout) = ov.delack_timeout {
        config.delack.timeout = timeout;
    }
    if let Some(floor) = ov.min_rto {
        config.rto.min_rto = floor;
    }
    if let Some(ceiling) = ov.max_rto {
        config.rto.max_rto = ceiling;
    }
    config
}

/// Executes one experiment point.
pub fn run_point(cfg: &RunConfig) -> PointResult {
    let n = cfg.num_clients;
    assert!(n > 0, "a run needs at least one client");
    let (client_mode, server_mode) = match cfg.nagle {
        NagleSetting::Off | NagleSetting::AimdLimit { .. } => (NagleMode::Off, NagleMode::Off),
        NagleSetting::On => (NagleMode::On, NagleMode::On),
        NagleSetting::ServerOnly => (NagleMode::Off, NagleMode::On),
        NagleSetting::Dynamic { .. } | NagleSetting::Plane { .. } => {
            (NagleMode::Dynamic, NagleMode::Dynamic)
        }
        NagleSetting::Corner { nagle, .. } => {
            let mode = if nagle { NagleMode::On } else { NagleMode::Off };
            (mode, mode)
        }
    };
    let mut tcp = tcp_config(client_mode, &cfg.overrides);
    let mut tcp_server = tcp_config(server_mode, &cfg.overrides);
    if let NagleSetting::Corner {
        delayed_ack, cork, ..
    } = cfg.nagle
    {
        // Pin the remaining two knobs symmetrically on both endpoints:
        // quick-ack is the runtime `KnobSetting::DelAck` actuation frozen
        // into the initial config, the fixed cork limit is two MSS.
        for config in [&mut tcp, &mut tcp_server] {
            config.delack.quick = !delayed_ack;
            config.batch_limit = cork.then_some(2 * 1_448);
        }
    }

    // The aggregate load splits evenly across independent arrival streams.
    let mut spec = cfg.workload;
    spec.rate_rps = cfg.workload.rate_rps / n as f64;

    let tick = cfg.overrides.policy_tick.unwrap_or(Nanos::from_millis(1));
    let alpha = cfg.overrides.score_alpha.unwrap_or(0.4);

    // A staleness bound degrades estimator confidence when the peer's
    // shared state ages out; the breaker (when configured) acts on that.
    let recorder = |unit: Unit| -> EstimateRecorder {
        let mut r = EstimateRecorder::new(unit);
        if let Some(bound) = cfg.staleness_bound {
            r = r.with_staleness_bound(bound);
        }
        if let Some(v) = cfg.validate {
            r = r.with_validation(v);
        }
        r
    };
    // A control plane for one endpoint: the Nagle bandit always (seeded
    // exactly like the Dynamic policy at the same endpoint, so a
    // Nagle-only plane replays the same RNG stream), plus whichever of
    // the two other knobs the configuration attaches. The exploration
    // window (8 decisions) gives a perturbed knob a few ticks to show up
    // in the estimate before the turn rotates.
    let plane_for = |objective: Objective, delack: bool, cork: bool, seed: u64| -> ControlPlane {
        let mut plane = ControlPlane::new(EpsilonGreedy::new(objective, 0.05, 4, alpha, seed), 8);
        if delack {
            plane = plane.with_delack(DelAckToggler::new(
                EpsilonGreedy::new(objective, 0.05, 4, alpha, seed ^ 0xDE1A),
                tcp.delack.timeout,
            ));
        }
        if cork {
            // The limit starts and floors at 0 (no cork); additive probes
            // of one MSS raise it only when the estimate rewards corking.
            plane = plane.with_cork(AimdBatchLimit::new(objective, 0, 0, 65_536, 1_448));
        }
        plane
    };

    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let mut client = LancetClient::new(
            spec,
            cfg.profile.app,
            tcp,
            cfg.warmup,
            cfg.warmup + cfg.measure,
        )
        .with_recorder(recorder(Unit::Bytes))
        .with_recorder(recorder(Unit::Packets))
        .with_recorder(recorder(Unit::Messages));
        if cfg.use_hints {
            client = client.with_hints();
        }
        if let NagleSetting::AimdLimit { objective } = cfg.nagle {
            // Limit range: one byte (≈ NODELAY) up to the TSO maximum;
            // additive step of one MSS, as the congestion-control
            // precedent suggests.
            client = client.with_aimd(AimdDriver::new(
                Unit::Bytes,
                AimdBatchLimit::new(objective, 1, 1, 65_536, 1_448),
            ));
        }
        if let NagleSetting::Dynamic { objective } = cfg.nagle {
            // Client 0 keeps the legacy policy seed; the golden-gamma
            // spread gives every further client an independent stream.
            let seed = cfg.seed ^ 0xC ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut driver = PolicyDriver::new(
                Unit::Bytes,
                TickController::new(
                    shield(
                        EpsilonGreedy::new(objective, 0.05, 4, alpha, seed),
                        cfg.breaker,
                    ),
                    tick,
                ),
            );
            if let Some(bound) = cfg.staleness_bound {
                driver = driver.with_staleness_bound(bound);
            }
            if let Some(v) = cfg.validate {
                driver = driver.with_validation(v);
            }
            client = client.with_policy(driver);
        }
        if let NagleSetting::Plane {
            objective,
            delack,
            cork,
        } = cfg.nagle
        {
            // Same per-client seed spread as the Dynamic policy: a
            // Nagle-only plane is the same controller, decision for
            // decision.
            let seed = cfg.seed ^ 0xC ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut driver = PlaneDriver::new(
                Unit::Bytes,
                TickController::new(shield(plane_for(objective, delack, cork, seed), cfg.breaker), tick),
            );
            if let Some(bound) = cfg.staleness_bound {
                driver = driver.with_staleness_bound(bound);
            }
            if let Some(v) = cfg.validate {
                driver = driver.with_validation(v);
            }
            client = client.with_plane(driver);
        }
        clients.push(client);
    }

    let mut server = RedisServer::new(cfg.profile.app).with_hint_recorder();
    if let NagleSetting::Dynamic { objective } = cfg.nagle {
        // One listener-wide ε-greedy toggler fed the throughput-weighted
        // aggregate over every accepted connection.
        let mut driver = ListenerDriver::new(
            Unit::Bytes,
            TickController::new(
                shield(
                    EpsilonGreedy::new(objective, 0.05, 4, alpha, cfg.seed ^ 0x5),
                    cfg.breaker,
                ),
                tick,
            ),
        );
        if let Some(bound) = cfg.staleness_bound {
            driver = driver.with_staleness_bound(bound);
        }
        if let Some(v) = cfg.validate {
            driver = driver.with_validation(v);
        }
        server = server.with_policy(driver);
    }
    if let NagleSetting::Plane {
        objective,
        delack,
        cork,
    } = cfg.nagle
    {
        // One listener-wide plane fed the throughput-weighted aggregate,
        // seeded exactly like the Dynamic listener policy.
        let mut driver = ListenerPlaneDriver::new(
            Unit::Bytes,
            TickController::new(
                shield(plane_for(objective, delack, cork, cfg.seed ^ 0x5), cfg.breaker),
                tick,
            ),
        );
        if let Some(bound) = cfg.staleness_bound {
            driver = driver.with_staleness_bound(bound);
        }
        if let Some(v) = cfg.validate {
            driver = driver.with_validation(v);
        }
        server = server.with_plane(driver);
    }

    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId::from_index(i),
                CpuContext::with_multiplier("client-app", cfg.profile.client_app_multiplier),
                CpuContext::new("client-softirq"),
                cfg.profile.client_stack,
                tcp,
            )
        })
        .collect();
    let server_host = Host::new(
        HostId::from_index(n),
        CpuContext::new("server-app"),
        CpuContext::new("server-softirq"),
        cfg.profile.server_stack,
        tcp_server, // accept config
    );

    let mut sim = NetSim::star_with_faults(
        clients,
        server,
        client_hosts,
        server_host,
        LinkConfig::default(),
        cfg.seed,
        cfg.fault,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);

    // Run warmup, snapshot CPU accounting, run the measurement window.
    let mut events = run(&mut sim, &mut queue, cfg.warmup);
    let snaps: Vec<_> = (0..=n)
        .map(|h| {
            (
                sim.host(h).app_cpu.busy_snapshot(queue.now()),
                sim.host(h).softirq_cpu.busy_snapshot(queue.now()),
            )
        })
        .collect();
    let end = cfg.warmup + cfg.measure;
    events += run(&mut sim, &mut queue, end);
    // Drain a little so in-flight responses complete (not measured —
    // samples are keyed by arrival time).
    events += run(&mut sim, &mut queue, end + Nanos::from_millis(20));

    let (from, to) = (cfg.warmup, end);
    let util = |h: usize| CpuUtil {
        app: sim.host(h).app_cpu.utilization_since(&snaps[h].0, to),
        softirq: sim.host(h).softirq_cpu.utilization_since(&snaps[h].1, to),
    };
    let client_cpu = util(0);
    let server_cpu = util(n);

    // Per-connection slices.
    let per_client: Vec<ClientResult> = (0..n)
        .map(|i| {
            let lg = &sim.clients[i];
            // `sock` is `None` when an injected endpoint restart's
            // reconnect is still in flight as the run ends.
            ClientResult {
                offered_rps: spec.rate_rps,
                achieved_rps: lg.achieved_rps(),
                samples: lg.hist.count(),
                measured_mean: lg.hist.mean(),
                measured_p99: lg.hist.p99(),
                estimated_bytes: lg
                    .recorders
                    .iter()
                    .find(|r| r.unit == Unit::Bytes)
                    .and_then(|r| r.mean_latency_in(from, to)),
                exchanges_received: lg
                    .sock
                    .map(|sock| sim.host(i).socket(sock).remote().received)
                    .unwrap_or(0),
            }
        })
        .collect();

    // Aggregate measured latency: one merged histogram over every
    // connection's samples.
    let mut hist = Histogram::new();
    for lg in &sim.clients {
        hist.merge(&lg.hist);
    }

    // Aggregate estimates: throughput-weighted across the per-connection
    // estimators (§3.2's multi-connection averaging). With one client this
    // is exactly that client's estimate.
    let rec = |unit: Unit| -> Option<Nanos> {
        let mut agg = MultiConnectionAggregator::new();
        for lg in &sim.clients {
            let r = lg.recorders.iter().find(|r| r.unit == unit);
            let lat = r.and_then(|r| r.mean_latency_in(from, to));
            let tput = r.and_then(|r| r.mean_throughput_in(from, to));
            if let (Some(lat), Some(tput)) = (lat, tput) {
                agg.add(Estimate {
                    at: to,
                    latency: lat,
                    smoothed_latency: lat,
                    throughput: tput,
                    local_view: lat,
                    remote_view: lat,
                    confidence: 1.0,
                    remote_stale: false,
                    components: DelaySet::default(),
                });
            }
        }
        agg.aggregate().map(|a| a.latency)
    };

    let lg0 = &sim.clients[0];
    let client_nagle_holds: u64 = (0..n)
        .filter_map(|i| {
            let sock = sim.clients[i].sock?;
            Some(sim.host(i).socket(sock).stats().nagle_holds)
        })
        .sum();
    let server_nagle_holds: u64 = sim
        .server_host()
        .socket_ids()
        .map(|s| sim.server_host().socket(s).stats().nagle_holds)
        .sum();

    let server_plane = sim.server.plane.as_ref().map(|p| p.plane());

    // One merged view of every validator's verdict counters. Gated on the
    // config so a validation-free run reports `None` rather than a
    // vacuous all-zero record.
    let validation: Option<ValidateStats> = cfg.validate.map(|_| {
        let mut stats = ValidateStats::default();
        for lg in &sim.clients {
            for r in &lg.recorders {
                if let Some(s) = r.validation_stats() {
                    stats.merge(&s);
                }
            }
            if let Some(s) = lg.policy.as_ref().and_then(|p| p.recorder.validation_stats()) {
                stats.merge(&s);
            }
            if let Some(s) = lg.plane.as_ref().and_then(|p| p.recorder.validation_stats()) {
                stats.merge(&s);
            }
        }
        if let Some(p) = sim.server.policy.as_ref() {
            stats.merge(&p.validation_stats());
        }
        if let Some(p) = sim.server.plane.as_ref() {
            stats.merge(&p.validation_stats());
        }
        stats
    });

    PointResult {
        offered_rps: cfg.workload.rate_rps,
        achieved_rps: per_client.iter().map(|c| c.achieved_rps).sum(),
        measured_mean: hist.mean(),
        measured_p50: hist.p50(),
        measured_p99: hist.p99(),
        samples: hist.count(),
        estimated_bytes: rec(Unit::Bytes),
        estimated_packets: rec(Unit::Packets),
        estimated_messages: rec(Unit::Messages),
        estimated_hint: sim.server.hint_mean_latency_in(from, to),
        tracker_mean: lg0.tracker_averages().and_then(|a| a.delay),
        srtt: lg0.sock.and_then(|s| sim.host(0).socket(s).srtt()),
        client_cpu,
        server_cpu,
        packets_to_server: (0..n).map(|i| sim.link_for(i).a_to_b.packets_sent()).sum(),
        packets_to_client: (0..n).map(|i| sim.link_for(i).b_to_a.packets_sent()).sum(),
        nagle_holds: client_nagle_holds + server_nagle_holds,
        client_on_fraction: lg0
            .policy
            .as_ref()
            .map(|p| p.on_fraction())
            .or_else(|| lg0.plane.as_ref().map(|p| p.on_fraction())),
        aimd_mean_limit: lg0.aimd.as_ref().and_then(|a| a.mean_limit_in(from, to)),
        server_on_fraction: sim
            .server
            .policy
            .as_ref()
            .map(|p| p.on_fraction())
            .or_else(|| sim.server.plane.as_ref().map(|p| p.on_fraction())),
        exchanges_received: per_client.iter().map(|c| c.exchanges_received).sum(),
        num_clients: n,
        server_aggregate_latency: sim
            .server
            .policy
            .as_ref()
            .and_then(|p| p.mean_aggregate_latency_in(from, to))
            .or_else(|| {
                sim.server
                    .plane
                    .as_ref()
                    .and_then(|p| p.mean_aggregate_latency_in(from, to))
            }),
        per_client,
        link_faults: sim
            .fault_plan()
            .map(|p| p.per_link_counters())
            .unwrap_or_default(),
        fault_blackout_time: sim
            .fault_plan()
            .map(|p| p.blackout_time_until(to))
            .unwrap_or(Nanos::ZERO),
        client_breaker_trips: lg0
            .policy
            .as_ref()
            .map(|p| p.breaker().trips())
            .or_else(|| lg0.plane.as_ref().map(|p| p.breaker().trips())),
        server_breaker_trips: sim
            .server
            .policy
            .as_ref()
            .map(|p| p.breaker().trips())
            .or_else(|| sim.server.plane.as_ref().map(|p| p.breaker().trips())),
        plane_nagle_switches: server_plane.map(|p| p.nagle_switches()),
        plane_delack_switches: server_plane.map(|p| p.delack_switches()),
        plane_cork_switches: server_plane.map(|p| p.cork_switches()),
        plane_explorations: server_plane
            .map(|p| p.nagle_explorations() + p.delack_explorations() + p.cork_explorations()),
        plane_cork_limit: server_plane.and_then(|p| p.cork_limit()),
        validation,
        client_restarts: sim.clients.iter().map(|lg| lg.restarts_seen).sum(),
        fault_restarts: sim.fault_plan().map(|p| p.restarts()).unwrap_or(0),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(rate: f64, nagle: NagleSetting) -> RunConfig {
        RunConfig {
            warmup: Nanos::from_millis(50),
            measure: Nanos::from_millis(150),
            ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
        }
    }

    #[test]
    fn low_load_run_completes_and_measures() {
        let r = run_point(&quick_cfg(5_000.0, NagleSetting::Off));
        assert!(r.samples > 400, "got {} samples", r.samples);
        // Achieved ≈ offered at low load.
        assert!(
            (r.achieved_rps - 5_000.0).abs() / 5_000.0 < 0.1,
            "achieved {}",
            r.achieved_rps
        );
        let mean = r.measured_mean.expect("samples");
        assert!(
            mean > Nanos::from_micros(10) && mean < Nanos::from_micros(500),
            "implausible latency {mean}"
        );
    }

    #[test]
    fn estimates_are_produced() {
        let r = run_point(&quick_cfg(10_000.0, NagleSetting::Off));
        assert!(r.estimated_bytes.is_some(), "byte estimate missing");
        assert!(r.estimated_messages.is_some(), "message estimate missing");
        assert!(r.estimated_hint.is_some(), "hint estimate missing");
        assert!(r.tracker_mean.is_some(), "tracker ground truth missing");
        assert!(r.exchanges_received > 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_point(&quick_cfg(8_000.0, NagleSetting::On));
        let b = run_point(&quick_cfg(8_000.0, NagleSetting::On));
        assert_eq!(a.measured_mean, b.measured_mean);
        assert_eq!(a.packets_to_server, b.packets_to_server);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn nagle_on_coalesces_response_packets_under_load() {
        let off = run_point(&quick_cfg(40_000.0, NagleSetting::Off));
        let on = run_point(&quick_cfg(40_000.0, NagleSetting::On));
        assert!(
            on.packets_to_client < off.packets_to_client,
            "Nagle should coalesce responses: on={} off={}",
            on.packets_to_client,
            off.packets_to_client
        );
        assert!(on.nagle_holds > 0);
    }
}
