//! Running one experiment point: one (workload, configuration) pair.
//!
//! A [`RunConfig`] fully describes a run — workload, cost profile, Nagle
//! setting, hint usage, durations, seed — and [`run_point`] executes it,
//! returning a serializable [`PointResult`] with measured latency,
//! achieved throughput, every estimator's view, CPU utilizations, and
//! packet counts. All figure experiments and many integration tests are
//! thin wrappers over this.

use batchpolicy::{AimdBatchLimit, EpsilonGreedy, Objective, TickController};
use littles::Nanos;
use simnet::{run, CpuContext, EventQueue, LinkConfig};
use tcpsim::config::ExchangeConfig;
use tcpsim::{Host, HostId, NagleMode, NetSim, SocketId, TcpConfig, Unit};

use crate::cost::CostProfile;
use crate::driver::{AimdDriver, EstimateRecorder, PolicyDriver};
use crate::loadgen::LancetClient;
use crate::server::RedisServer;
use crate::workload::WorkloadSpec;

/// How batching is controlled during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NagleSetting {
    /// `TCP_NODELAY` everywhere (the Redis default).
    Off,
    /// Nagle enabled on both endpoints.
    On,
    /// Nagle enabled only at the server (toggling Redis's own setting,
    /// as Figure 2 does), client stays `TCP_NODELAY`.
    ServerOnly,
    /// Toggled dynamically by per-endpoint ε-greedy policies under the
    /// given objective.
    Dynamic {
        /// The optimization objective.
        objective: Objective,
    },
    /// Nagle replaced by the §5 gradual batching limit, adapted with AIMD
    /// under the given objective (client side; the server keeps
    /// `TCP_NODELAY`).
    AimdLimit {
        /// The optimization objective.
        objective: Objective,
    },
}

/// Optional stack/policy overrides for ablation studies (§5 knobs). All
/// `None` means the calibrated defaults.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overrides {
    /// Metadata-exchange minimum interval.
    pub exchange_interval: Option<Nanos>,
    /// Dynamic-policy decision period (the toggling granularity).
    pub policy_tick: Option<Nanos>,
    /// Per-arm score EWMA weight for the ε-greedy toggler.
    pub score_alpha: Option<f64>,
    /// Force TSO on/off.
    pub tso: Option<bool>,
    /// Force auto-corking on/off.
    pub autocork: Option<bool>,
    /// Delayed-ACK timeout.
    pub delack_timeout: Option<Nanos>,
}

/// Everything that defines one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// The workload.
    pub workload: WorkloadSpec,
    /// CPU cost profile.
    pub profile: CostProfile,
    /// Batching control.
    pub nagle: NagleSetting,
    /// Whether the client forwards `create`/`complete` hints.
    pub use_hints: bool,
    /// Warmup duration (excluded from measurement).
    pub warmup: Nanos,
    /// Measurement duration.
    pub measure: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Ablation overrides.
    pub overrides: Overrides,
}

impl RunConfig {
    /// A standard run: 200 ms warmup, 800 ms measurement.
    pub fn new(workload: WorkloadSpec, nagle: NagleSetting) -> Self {
        RunConfig {
            workload,
            profile: CostProfile::calibrated(),
            nagle,
            use_hints: true,
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(800),
            seed: 0xE2E,
            overrides: Overrides::default(),
        }
    }
}

/// One side's CPU utilizations over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuUtil {
    /// Application-thread utilization (may exceed 1.0 when oversubscribed).
    pub app: f64,
    /// Softirq-context utilization.
    pub softirq: f64,
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Offered load (requests/second).
    pub offered_rps: f64,
    /// Achieved goodput (responses/second over the window).
    pub achieved_rps: f64,
    /// Measured mean latency (arrival → response processed).
    pub measured_mean: Option<Nanos>,
    /// Measured median latency.
    pub measured_p50: Option<Nanos>,
    /// Measured 99th-percentile latency.
    pub measured_p99: Option<Nanos>,
    /// Samples in the window.
    pub samples: u64,
    /// Byte-unit Little's-law estimate (the paper's prototype).
    pub estimated_bytes: Option<Nanos>,
    /// Packet-unit estimate.
    pub estimated_packets: Option<Nanos>,
    /// Message-unit (send-syscall) estimate.
    pub estimated_messages: Option<Nanos>,
    /// Hint-based estimate recorded at the server (§3.3).
    pub estimated_hint: Option<Nanos>,
    /// Application-level tracker ground truth (client side).
    pub tracker_mean: Option<Nanos>,
    /// The client's smoothed RTT — the paper's §2 inadequate baseline
    /// (misses application read delays; inflated by delayed ACKs).
    pub srtt: Option<Nanos>,
    /// Client CPU utilization.
    pub client_cpu: CpuUtil,
    /// Server CPU utilization.
    pub server_cpu: CpuUtil,
    /// Wire packets client → server during the whole run.
    pub packets_to_server: u64,
    /// Wire packets server → client.
    pub packets_to_client: u64,
    /// Nagle holds observed (both endpoints).
    pub nagle_holds: u64,
    /// Fraction of dynamic-policy decisions with batching on (client).
    pub client_on_fraction: Option<f64>,
    /// Fraction of dynamic-policy decisions with batching on (server).
    pub server_on_fraction: Option<f64>,
    /// Mean AIMD batch limit over the window (AimdLimit runs only).
    pub aimd_mean_limit: Option<f64>,
    /// Exchanges received by the client (metadata-exchange health).
    pub exchanges_received: u64,
}

fn tcp_config(nagle: NagleMode, ov: &Overrides) -> TcpConfig {
    let mut config = TcpConfig {
        nagle,
        // Exchange byte- and message-unit counters so one run yields both
        // estimate flavours (§3.3 comparison).
        exchange: ExchangeConfig {
            enabled: true,
            min_interval: ov.exchange_interval.unwrap_or(Nanos::from_micros(500)),
            units: [true, false, true],
        },
        ..TcpConfig::default()
    };
    if let Some(tso) = ov.tso {
        config.tso.enabled = tso;
    }
    if let Some(cork) = ov.autocork {
        config.cork.enabled = cork;
    }
    if let Some(timeout) = ov.delack_timeout {
        config.delack.timeout = timeout;
    }
    config
}

/// Executes one experiment point.
pub fn run_point(cfg: &RunConfig) -> PointResult {
    let (client_mode, server_mode) = match cfg.nagle {
        NagleSetting::Off | NagleSetting::AimdLimit { .. } => (NagleMode::Off, NagleMode::Off),
        NagleSetting::On => (NagleMode::On, NagleMode::On),
        NagleSetting::ServerOnly => (NagleMode::Off, NagleMode::On),
        NagleSetting::Dynamic { .. } => (NagleMode::Dynamic, NagleMode::Dynamic),
    };
    let tcp = tcp_config(client_mode, &cfg.overrides);
    let tcp_server = tcp_config(server_mode, &cfg.overrides);

    let mut client = LancetClient::new(
        cfg.workload,
        cfg.profile.app,
        tcp,
        cfg.warmup,
        cfg.warmup + cfg.measure,
    )
    .with_recorder(EstimateRecorder::new(Unit::Bytes))
    .with_recorder(EstimateRecorder::new(Unit::Packets))
    .with_recorder(EstimateRecorder::new(Unit::Messages));
    if cfg.use_hints {
        client = client.with_hints();
    }
    let mut server = RedisServer::new(cfg.profile.app).with_hint_recorder();
    if let NagleSetting::AimdLimit { objective } = cfg.nagle {
        // Limit range: one byte (≈ NODELAY) up to the TSO maximum; additive
        // step of one MSS, as the congestion-control precedent suggests.
        client = client.with_aimd(AimdDriver::new(
            Unit::Bytes,
            AimdBatchLimit::new(objective, 1, 1, 65_536, 1_448),
        ));
    }
    if let NagleSetting::Dynamic { objective } = cfg.nagle {
        let tick = cfg.overrides.policy_tick.unwrap_or(Nanos::from_millis(1));
        let alpha = cfg.overrides.score_alpha.unwrap_or(0.4);
        let mk = |seed: u64| {
            TickController::new(EpsilonGreedy::new(objective, 0.05, 4, alpha, seed), tick)
        };
        client = client.with_policy(PolicyDriver::new(Unit::Bytes, mk(cfg.seed ^ 0xC)));
        server = server.with_policy(PolicyDriver::new(Unit::Bytes, mk(cfg.seed ^ 0x5)));
    }

    let client_host = Host::new(
        HostId(0),
        CpuContext::with_multiplier("client-app", cfg.profile.client_app_multiplier),
        CpuContext::new("client-softirq"),
        cfg.profile.client_stack,
        tcp,
    );
    let server_host = Host::new(
        HostId(1),
        CpuContext::new("server-app"),
        CpuContext::new("server-softirq"),
        cfg.profile.server_stack,
        tcp_server, // accept config
    );

    let mut sim = NetSim::new(
        client,
        server,
        client_host,
        server_host,
        LinkConfig::default(),
        cfg.seed,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);

    // Run warmup, snapshot CPU accounting, run the measurement window.
    run(&mut sim, &mut queue, cfg.warmup);
    let snaps: Vec<_> = (0..2)
        .map(|h| {
            (
                sim.host(h).app_cpu.busy_snapshot(queue.now()),
                sim.host(h).softirq_cpu.busy_snapshot(queue.now()),
            )
        })
        .collect();
    let end = cfg.warmup + cfg.measure;
    run(&mut sim, &mut queue, end);
    // Drain a little so in-flight responses complete (not measured —
    // samples are keyed by arrival time).
    run(&mut sim, &mut queue, end + Nanos::from_millis(20));

    let (from, to) = (cfg.warmup, end);
    let util = |h: usize| CpuUtil {
        app: sim.host(h).app_cpu.utilization_since(&snaps[h].0, to),
        softirq: sim.host(h).softirq_cpu.utilization_since(&snaps[h].1, to),
    };
    let client_cpu = util(0);
    let server_cpu = util(1);

    let lg = &sim.client;
    let rec = |unit: Unit| {
        lg.recorders
            .iter()
            .find(|r| r.unit == unit)
            .and_then(|r| r.mean_latency_in(from, to))
    };
    let client_sock = lg.sock.expect("client connected");

    PointResult {
        offered_rps: cfg.workload.rate_rps,
        achieved_rps: lg.achieved_rps(),
        measured_mean: lg.hist.mean(),
        measured_p50: lg.hist.p50(),
        measured_p99: lg.hist.p99(),
        samples: lg.hist.count(),
        estimated_bytes: rec(Unit::Bytes),
        estimated_packets: rec(Unit::Packets),
        estimated_messages: rec(Unit::Messages),
        estimated_hint: sim
            .server
            .hint_recorder
            .as_ref()
            .and_then(|h| h.mean_latency_in(from, to)),
        tracker_mean: lg.tracker_averages().and_then(|a| a.delay),
        srtt: sim.host(0).socket(client_sock).srtt(),
        client_cpu,
        server_cpu,
        packets_to_server: sim.link().a_to_b.packets_sent(),
        packets_to_client: sim.link().b_to_a.packets_sent(),
        nagle_holds: sim.host(0).socket(client_sock).stats().nagle_holds
            + sim
                .host(1)
                .socket(SocketId(0))
                .stats()
                .nagle_holds,
        client_on_fraction: lg.policy.as_ref().map(|p| p.on_fraction()),
        aimd_mean_limit: lg.aimd.as_ref().and_then(|a| a.mean_limit_in(from, to)),
        server_on_fraction: sim.server.policy.as_ref().map(|p| p.on_fraction()),
        exchanges_received: sim.host(0).socket(client_sock).remote().received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(rate: f64, nagle: NagleSetting) -> RunConfig {
        RunConfig {
            warmup: Nanos::from_millis(50),
            measure: Nanos::from_millis(150),
            ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
        }
    }

    #[test]
    fn low_load_run_completes_and_measures() {
        let r = run_point(&quick_cfg(5_000.0, NagleSetting::Off));
        assert!(r.samples > 400, "got {} samples", r.samples);
        // Achieved ≈ offered at low load.
        assert!(
            (r.achieved_rps - 5_000.0).abs() / 5_000.0 < 0.1,
            "achieved {}",
            r.achieved_rps
        );
        let mean = r.measured_mean.expect("samples");
        assert!(
            mean > Nanos::from_micros(10) && mean < Nanos::from_micros(500),
            "implausible latency {mean}"
        );
    }

    #[test]
    fn estimates_are_produced() {
        let r = run_point(&quick_cfg(10_000.0, NagleSetting::Off));
        assert!(r.estimated_bytes.is_some(), "byte estimate missing");
        assert!(r.estimated_messages.is_some(), "message estimate missing");
        assert!(r.estimated_hint.is_some(), "hint estimate missing");
        assert!(r.tracker_mean.is_some(), "tracker ground truth missing");
        assert!(r.exchanges_received > 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_point(&quick_cfg(8_000.0, NagleSetting::On));
        let b = run_point(&quick_cfg(8_000.0, NagleSetting::On));
        assert_eq!(a.measured_mean, b.measured_mean);
        assert_eq!(a.packets_to_server, b.packets_to_server);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn nagle_on_coalesces_response_packets_under_load() {
        let off = run_point(&quick_cfg(40_000.0, NagleSetting::Off));
        let on = run_point(&quick_cfg(40_000.0, NagleSetting::On));
        assert!(
            on.packets_to_client < off.packets_to_client,
            "Nagle should coalesce responses: on={} off={}",
            on.packets_to_client,
            off.packets_to_client
        );
        assert!(on.nagle_holds > 0);
    }
}
