//! Estimation and policy plumbing shared by client and server apps.
//!
//! A [`PolicyDriver`] is what an endpoint runs on its periodic tick: it
//! snapshots the socket's local queues, pairs them with the peer's latest
//! exchange, updates an [`E2eEstimator`], records the estimate series (the
//! "estimated" curves of Figure 4), and — when a toggler is attached —
//! actuates the socket's dynamic-Nagle switch.

use batchpolicy::{
    AimdBatchLimit, BreakerState, CircuitBreaker, ControlPlane, EpsilonGreedy, TickController,
};
use e2e_core::combine::{combine_delays, EndpointSnapshots, EndpointWindows};
use e2e_core::compose::compose_two;
use e2e_core::hints::{HintEstimate, HintEstimator};
use e2e_core::{
    AggregateEstimate, E2eEstimator, Estimate, EstimatorRegistry, ValidateConfig, ValidateStats,
};
use littles::wire::WireScale;
use littles::Nanos;
use tcpsim::{HostCtx, KnobSetting, SocketId, Unit};

/// One recorded estimate sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateSample {
    /// Sample time.
    pub at: Nanos,
    /// The estimate.
    pub estimate: Estimate,
}

/// Per-unit estimate recording (no actuation).
///
/// The series grows by one sample per tick for the lifetime of the run;
/// it is intended for bounded experiment windows. Long-lived deployments
/// should drain or cap `series` periodically.
#[derive(Debug)]
pub struct EstimateRecorder {
    /// The message unit this recorder estimates in.
    pub unit: Unit,
    estimator: E2eEstimator,
    /// The recorded series.
    pub series: Vec<EstimateSample>,
    /// Checkpoints of the estimator's cumulative (local, remote) windows,
    /// taken at ticks that folded in a fresh exchange. Range queries
    /// difference two checkpoints and evaluate the decomposition over the
    /// resulting long window, instead of averaging noisy per-tick delay
    /// ratios. Checkpointing at exchange ticks keeps both sides' sums
    /// aligned to the same exchange boundaries and self-scales the memory:
    /// at high per-connection load it is one entry per tick, at high
    /// fan-in one entry per (sparse) exchange.
    cum_series: Vec<(Nanos, EndpointWindows, EndpointWindows)>,
    /// `remote_epoch` at the last checkpoint.
    cum_epoch: u64,
}

impl EstimateRecorder {
    /// Creates a recorder for one unit.
    pub fn new(unit: Unit) -> Self {
        EstimateRecorder {
            unit,
            estimator: E2eEstimator::new(WireScale::default(), 1.0),
            series: Vec::new(),
            cum_series: Vec::new(),
            cum_epoch: 0,
        }
    }

    /// Bounds how long the estimator trusts a cached remote window (see
    /// [`E2eEstimator::with_staleness_bound`]).
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.estimator = self.estimator.with_staleness_bound(bound);
        self
    }

    /// Validates every incoming exchange against locally observable
    /// signals before it can influence the estimate (see
    /// [`e2e_core::validate`]).
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.estimator = self.estimator.with_validation(config);
        self
    }

    /// Validation counters, if validation is enabled.
    pub fn validation_stats(&self) -> Option<ValidateStats> {
        self.estimator.validation_stats()
    }

    /// Runs one tick against `sock`.
    pub fn tick(&mut self, ctx: &HostCtx<'_>, sock: SocketId) {
        let now = ctx.now();
        let snaps = ctx.socket(sock).local_snapshots(now, self.unit);
        let local = EndpointSnapshots {
            unacked: snaps.unacked,
            unread: snaps.unread,
            ackdelay: snaps.ackdelay,
        };
        let remote = ctx.socket(sock).remote().unit(self.unit).cur;
        // The socket's smoothed RTT anchors the validator's delay bound;
        // with validation disabled it is ignored.
        let srtt = ctx.socket(sock).srtt();
        if let Some(estimate) = self.estimator.update_validated(now, local, remote, srtt) {
            self.series.push(EstimateSample { at: now, estimate });
        }
        if self.estimator.remote_epoch() != self.cum_epoch {
            self.cum_epoch = self.estimator.remote_epoch();
            let (cl, cr) = self.estimator.cumulative_windows();
            self.cum_series.push((now, cl, cr));
        }
    }

    /// The cumulative-window difference across the checkpoints falling in
    /// `[from, to)`: one long (local, remote) window pair covering the
    /// range, or `None` when fewer than two checkpoints fall inside it.
    fn range_windows(&self, from: Nanos, to: Nanos) -> Option<(EndpointWindows, EndpointWindows)> {
        let mut inside = self
            .cum_series
            .iter()
            .filter(|(at, _, _)| *at >= from && *at < to);
        let first = inside.next()?;
        let last = inside.last()?;
        let near = last.1.since(&first.1);
        let far = last.2.since(&first.2);
        (!near.unacked.dt.is_zero()).then_some((near, far))
    }

    /// Mean estimated latency over `[from, to)`.
    ///
    /// Evaluated by differencing cumulative queue windows across the range
    /// and applying the §3.2 decomposition to the one long window —
    /// Little's law with integrals and departures summed *before*
    /// dividing. Averaging the per-tick estimates instead is biased at low
    /// per-connection load (high fan-in): item residences straddle tick
    /// windows, the per-window delay ratios swing by milliseconds, and
    /// taking the larger of two noisy views each tick rectifies that
    /// noise into a positive bias that once made the N = 64 fan-in
    /// estimate ~32× the measured latency. Over the long window both
    /// views are computed from hundreds of departures and the larger one
    /// is a faithful guard against underestimation, as in the paper.
    /// Falls back to the plain mean of recorded samples when the range
    /// holds fewer than two exchange checkpoints.
    pub fn mean_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        if let Some((near, far)) = self.range_windows(from, to) {
            let lv = combine_delays(&near, &far).latency();
            let rv = combine_delays(&far, &near).latency();
            return Some(lv.max(rv));
        }
        let mut sum = 0u128;
        let mut n = 0u64;
        for s in &self.series {
            if s.at >= from && s.at < to {
                sum += s.estimate.latency.as_nanos() as u128;
                n += 1;
            }
        }
        (n > 0).then(|| Nanos::from_nanos((sum / n as u128) as u64))
    }

    /// Mean estimated throughput over `[from, to)`: departures over
    /// elapsed time from the range's cumulative window when available
    /// (see [`Self::mean_latency_in`]), otherwise the plain mean of the
    /// per-tick samples.
    pub fn mean_throughput_in(&self, from: Nanos, to: Nanos) -> Option<f64> {
        if let Some((near, _)) = self.range_windows(from, to) {
            return Some(near.unread.throughput());
        }
        let samples: Vec<f64> = self
            .series
            .iter()
            .filter(|s| s.at >= from && s.at < to)
            .map(|s| s.estimate.throughput)
            .collect();
        (!samples.is_empty()).then(|| samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Hint-based estimate recording (server side of §3.3).
#[derive(Debug, Default)]
pub struct HintRecorder {
    estimator: HintEstimator,
    /// The recorded series.
    pub series: Vec<(Nanos, HintEstimate)>,
}

impl HintRecorder {
    /// Creates a recorder.
    pub fn new() -> Self {
        HintRecorder {
            estimator: HintEstimator::new(WireScale::default()),
            series: Vec::new(),
        }
    }

    /// Runs one tick against `sock`, consuming the latest forwarded hint.
    pub fn tick(&mut self, ctx: &HostCtx<'_>, sock: SocketId) {
        if let Some(hint) = ctx.socket(sock).remote().hint.cur {
            if let Some(est) = self.estimator.update(hint) {
                self.series.push((ctx.now(), est));
            }
        }
    }

    /// Mean hint-estimated latency over `[from, to)`.
    pub fn mean_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        let vals: Vec<u64> = self
            .series
            .iter()
            .filter(|(at, e)| *at >= from && *at < to && e.latency.is_some())
            .map(|(_, e)| e.latency.expect("filtered").as_nanos())
            .collect();
        (!vals.is_empty())
            .then(|| Nanos::from_nanos(vals.iter().sum::<u64>() / vals.len() as u64))
    }
}

/// Estimation plus AIMD actuation: drives the socket's gradual batch
/// limit (paper §5, "Better Batching Heuristics") instead of a binary
/// Nagle switch.
#[derive(Debug)]
pub struct AimdDriver {
    /// The estimate source.
    pub recorder: EstimateRecorder,
    controller: AimdBatchLimit,
    /// Recorded (time, limit) trajectory.
    pub limits: Vec<(Nanos, u64)>,
}

impl AimdDriver {
    /// Creates a driver estimating in `unit` with the given controller.
    pub fn new(unit: Unit, controller: AimdBatchLimit) -> Self {
        AimdDriver {
            recorder: EstimateRecorder::new(unit),
            controller,
            limits: Vec::new(),
        }
    }

    /// Runs one tick: estimate, adapt the limit, actuate through the
    /// uniform knob path (`KnobSetting::CorkLimit`).
    pub fn tick(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        self.recorder.tick(ctx, sock);
        if let Some(sample) = self.recorder.series.last().copied() {
            let limit = self.controller.update(&sample.estimate);
            self.limits.push((ctx.now(), limit));
            ctx.apply(sock, KnobSetting::CorkLimit(limit));
        }
    }

    /// The most recently applied limit.
    pub fn current_limit(&self) -> Option<u64> {
        self.limits.last().map(|(_, l)| *l)
    }

    /// Mean limit over the recorded trajectory in `[from, to)`.
    pub fn mean_limit_in(&self, from: Nanos, to: Nanos) -> Option<f64> {
        let vals: Vec<u64> = self
            .limits
            .iter()
            .filter(|(at, _)| *at >= from && *at < to)
            .map(|(_, l)| *l)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<u64>() as f64 / vals.len() as f64)
    }
}

/// Listener-wide estimation plus actuation (paper §3.2, last paragraph).
///
/// Where a [`PolicyDriver`] watches one connection, a `ListenerDriver`
/// runs one [`E2eEstimator`] per accepted connection inside an
/// [`EstimatorRegistry`], folds their latest estimates into a
/// throughput-weighted [`AggregateEstimate`] each tick, makes a *single*
/// ε-greedy decision on the aggregate, and applies it to every
/// connection — the listener-wide Nagle default a server actually toggles.
/// With one connection the aggregate degenerates to that connection's
/// estimate, so the two-host experiments behave identically.
#[derive(Debug)]
pub struct ListenerDriver {
    /// The message unit the per-connection estimators use.
    pub unit: Unit,
    registry: EstimatorRegistry,
    controller: TickController<CircuitBreaker<EpsilonGreedy>>,
    /// Recorded toggle decisions (time, batching-on).
    pub toggles: Vec<(Nanos, bool)>,
    /// Recorded aggregate series.
    pub series: Vec<(Nanos, AggregateEstimate)>,
}

impl ListenerDriver {
    /// Creates a driver estimating in `unit` and deciding with the given
    /// ε-greedy controller (wrapped in a — possibly disabled — circuit
    /// breaker). The registry's estimators are unsmoothed, matching
    /// [`EstimateRecorder`].
    pub fn new(unit: Unit, controller: TickController<CircuitBreaker<EpsilonGreedy>>) -> Self {
        ListenerDriver {
            unit,
            registry: EstimatorRegistry::new(WireScale::default(), 1.0),
            controller,
            toggles: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Applies a staleness bound to every per-connection estimator the
    /// registry creates (see [`EstimatorRegistry::with_staleness_bound`]).
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.registry = self.registry.with_staleness_bound(bound);
        self
    }

    /// Applies peer-state validation to every per-connection estimator
    /// the registry creates.
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.registry = self.registry.with_validation(config);
        self
    }

    /// Validation counters summed across every connection's estimator.
    pub fn validation_stats(&self) -> ValidateStats {
        self.registry.validation_stats()
    }

    /// The circuit breaker around the listener-wide toggler.
    pub fn breaker(&self) -> &CircuitBreaker<EpsilonGreedy> {
        self.controller.inner()
    }

    /// Runs one tick over every live connection: update each estimator,
    /// aggregate, decide once, actuate everywhere.
    pub fn tick(&mut self, ctx: &mut HostCtx<'_>, socks: &[SocketId]) {
        let now = ctx.now();
        for &sock in socks {
            let snaps = ctx.socket(sock).local_snapshots(now, self.unit);
            let local = EndpointSnapshots {
                unacked: snaps.unacked,
                unread: snaps.unread,
                ackdelay: snaps.ackdelay,
            };
            let remote = ctx.socket(sock).remote().unit(self.unit).cur;
            let srtt = ctx.socket(sock).srtt();
            self.registry
                .update_validated(sock.0 as u64, now, local, remote, srtt);
        }
        if let Some(agg) = self.registry.aggregate() {
            let on = self.controller.offer_aggregate(now, &agg);
            self.series.push((now, agg));
            self.toggles.push((now, on));
            for &sock in socks {
                ctx.set_nagle(sock, on);
            }
        }
    }

    /// Connections the registry has seen.
    pub fn connections(&self) -> usize {
        self.registry.connections()
    }

    /// Fraction of ticks with batching on.
    pub fn on_fraction(&self) -> f64 {
        if self.toggles.is_empty() {
            return 0.0;
        }
        self.toggles.iter().filter(|(_, on)| *on).count() as f64 / self.toggles.len() as f64
    }

    /// Mean aggregate estimated latency over `[from, to)`.
    pub fn mean_aggregate_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        let mut sum = 0u128;
        let mut n = 0u64;
        for (at, agg) in &self.series {
            if *at >= from && *at < to {
                sum += agg.latency.as_nanos() as u128;
                n += 1;
            }
        }
        (n > 0).then(|| Nanos::from_nanos((sum / n as u128) as u64))
    }
}

/// Proxy-side estimation and per-shard actuation (the two-tier topology's
/// policy seat).
///
/// The proxy terminates every client connection (the *front* leg) and
/// holds one upstream connection per shard (the *back* legs). This driver
/// runs one front [`EstimatorRegistry`] over all accepted client
/// connections, one back registry per shard, and — per shard — composes
/// the two legs into a service-level [`AggregateEstimate`]
/// ([`compose_two`]: latencies summed along the path as in Figure 3,
/// confidence the weakest leg's). The composed series is the *reporting*
/// view: it is what ranks shards by end-to-end delay. Each shard's
/// [`ControlPlane`] decides on the *back-leg* estimate alone — the leg
/// its knob actually controls — so the shared front leg's queueing noise
/// (identical for every shard) cannot drown the per-shard signal. The
/// decision actuates on that shard's upstream socket: a hot shard can
/// batch while cold shards stay latency-optimal, independently.
#[derive(Debug)]
pub struct ProxyDriver {
    /// The message unit the per-connection estimators use.
    pub unit: Unit,
    front: EstimatorRegistry,
    backs: Vec<EstimatorRegistry>,
    controllers: Vec<TickController<CircuitBreaker<ControlPlane>>>,
    /// Per-shard recorded headline (Nagle) decisions (time, batching-on).
    pub toggles: Vec<Vec<(Nanos, bool)>>,
    /// Recorded front-leg (client → proxy) aggregate series.
    pub front_series: Vec<(Nanos, AggregateEstimate)>,
    /// Per-shard recorded *composed* (front + back) estimate series — the
    /// service-level view that ranks shards by end-to-end latency.
    pub shard_series: Vec<Vec<(Nanos, AggregateEstimate)>>,
}

impl ProxyDriver {
    /// Creates a driver estimating in `unit` with one controller per
    /// shard (each wrapped in a — possibly disabled — circuit breaker).
    pub fn new(
        unit: Unit,
        controllers: Vec<TickController<CircuitBreaker<ControlPlane>>>,
    ) -> Self {
        let shards = controllers.len();
        ProxyDriver {
            unit,
            front: EstimatorRegistry::new(WireScale::default(), 1.0),
            backs: (0..shards)
                .map(|_| EstimatorRegistry::new(WireScale::default(), 1.0))
                .collect(),
            controllers,
            toggles: vec![Vec::new(); shards],
            front_series: Vec::new(),
            shard_series: vec![Vec::new(); shards],
        }
    }

    /// Applies a staleness bound to every estimator the driver's
    /// registries create.
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.front = self.front.with_staleness_bound(bound);
        self.backs = self
            .backs
            .drain(..)
            .map(|b| b.with_staleness_bound(bound))
            .collect();
        self
    }

    /// Applies peer-state validation to every estimator the driver's
    /// registries create.
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.front = self.front.with_validation(config);
        self.backs = self
            .backs
            .drain(..)
            .map(|b| b.with_validation(config))
            .collect();
        self
    }

    /// Validation counters summed across the front registry and every
    /// shard's back registry.
    pub fn validation_stats(&self) -> ValidateStats {
        let mut total = self.front.validation_stats();
        for b in &self.backs {
            total.merge(&b.validation_stats());
        }
        total
    }

    /// Validation counters for one shard's back-leg registry alone —
    /// after a shard crash this is where the replacement connection's
    /// epoch change (and the resync it forces) shows up.
    pub fn back_validation_stats(&self, shard: usize) -> ValidateStats {
        self.backs[shard].validation_stats()
    }

    /// Number of shards the driver controls.
    pub fn num_shards(&self) -> usize {
        self.controllers.len()
    }

    /// The circuit breaker around one shard's plane.
    pub fn breaker(&self, shard: usize) -> &CircuitBreaker<ControlPlane> {
        self.controllers[shard].inner()
    }

    /// One shard's control plane.
    pub fn plane(&self, shard: usize) -> &ControlPlane {
        self.controllers[shard].inner().inner()
    }

    /// Client connections the front registry has seen.
    pub fn front_connections(&self) -> usize {
        self.front.connections()
    }

    /// Runs one tick: update the front registry over every client
    /// connection and each shard's back registry over its upstream
    /// connection, compose per-shard service estimates, and let each
    /// shard's plane decide and actuate on its own upstream socket.
    pub fn tick(
        &mut self,
        ctx: &mut HostCtx<'_>,
        client_socks: &[SocketId],
        upstreams: &[Option<SocketId>],
    ) {
        assert_eq!(upstreams.len(), self.backs.len(), "one upstream per shard");
        let now = ctx.now();
        let feed = |reg: &mut EstimatorRegistry, conn: u64, ctx: &HostCtx<'_>, sock: SocketId, unit| {
            let snaps = ctx.socket(sock).local_snapshots(now, unit);
            let local = EndpointSnapshots {
                unacked: snaps.unacked,
                unread: snaps.unread,
                ackdelay: snaps.ackdelay,
            };
            let remote = ctx.socket(sock).remote().unit(unit).cur;
            let srtt = ctx.socket(sock).srtt();
            reg.update_validated(conn, now, local, remote, srtt);
        };
        for &sock in client_socks {
            feed(&mut self.front, sock.0 as u64, ctx, sock, self.unit);
        }
        let front = self.front.aggregate();
        if let Some(f) = front {
            self.front_series.push((now, f));
        }
        for (shard, up) in upstreams.iter().enumerate() {
            let Some(sock) = *up else { continue };
            feed(&mut self.backs[shard], 0, ctx, sock, self.unit);
            let Some(back) = self.backs[shard].aggregate() else {
                continue;
            };
            // Until the front leg estimates (e.g. clients still idle) the
            // back leg alone is the best available service view.
            let composed = match front.as_ref() {
                Some(f) => compose_two(f, &back),
                None => back,
            };
            // Decide on the back leg: the Nagle knob only shapes
            // proxy → shard traffic, and the front leg's aggregate delay
            // is common to every shard — composing it in would only add
            // shared noise to each plane's signal.
            let on = self.controllers[shard].offer_aggregate(now, &back);
            self.shard_series[shard].push((now, composed));
            self.toggles[shard].push((now, on));
            for setting in plane_settings(&self.controllers[shard], on) {
                ctx.apply(sock, setting);
            }
        }
    }

    /// Fraction of one shard's decisions with batching on.
    pub fn on_fraction(&self, shard: usize) -> f64 {
        let t = &self.toggles[shard];
        if t.is_empty() {
            return 0.0;
        }
        t.iter().filter(|(_, on)| *on).count() as f64 / t.len() as f64
    }

    /// The newest composed (front + back) service estimate for one shard.
    pub fn latest_composed(&self, shard: usize) -> Option<&AggregateEstimate> {
        self.shard_series[shard].last().map(|(_, e)| e)
    }

    /// Mean composed service latency for one shard over `[from, to)`.
    pub fn shard_mean_latency_in(&self, shard: usize, from: Nanos, to: Nanos) -> Option<Nanos> {
        let mut sum = 0u128;
        let mut n = 0u64;
        for (at, agg) in &self.shard_series[shard] {
            if *at >= from && *at < to {
                sum += agg.latency.as_nanos() as u128;
                n += 1;
            }
        }
        (n > 0).then(|| Nanos::from_nanos((sum / n as u128) as u64))
    }
}

/// Estimation plus actuation: drives the socket's dynamic-Nagle switch.
#[derive(Debug)]
pub struct PolicyDriver {
    /// The estimate source.
    pub recorder: EstimateRecorder,
    controller: TickController<CircuitBreaker<EpsilonGreedy>>,
    /// Recorded toggle decisions (time, batching-on).
    pub toggles: Vec<(Nanos, bool)>,
}

impl PolicyDriver {
    /// Creates a driver estimating in `unit` and deciding with the given
    /// ε-greedy controller (wrapped in a — possibly disabled — circuit
    /// breaker).
    pub fn new(unit: Unit, controller: TickController<CircuitBreaker<EpsilonGreedy>>) -> Self {
        PolicyDriver {
            recorder: EstimateRecorder::new(unit),
            controller,
            toggles: Vec::new(),
        }
    }

    /// Bounds how long this driver's estimator trusts a cached remote
    /// window.
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.recorder = self.recorder.with_staleness_bound(bound);
        self
    }

    /// Validates every incoming exchange before it can influence the
    /// policy's estimate.
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.recorder = self.recorder.with_validation(config);
        self
    }

    /// The circuit breaker around the toggler.
    pub fn breaker(&self) -> &CircuitBreaker<EpsilonGreedy> {
        self.controller.inner()
    }

    /// Runs one tick: estimate, decide, actuate.
    pub fn tick(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        self.recorder.tick(ctx, sock);
        if let Some(sample) = self.recorder.series.last().copied() {
            let on = self.controller.offer(ctx.now(), &sample.estimate);
            self.toggles.push((ctx.now(), on));
            ctx.set_nagle(sock, on);
        }
    }

    /// Fraction of ticks with batching on.
    pub fn on_fraction(&self) -> f64 {
        if self.toggles.is_empty() {
            return 0.0;
        }
        self.toggles.iter().filter(|(_, on)| *on).count() as f64 / self.toggles.len() as f64
    }
}

/// The settings a plane driver actuates this tick: the plane's learned
/// settings while the surrounding breaker is closed, its safe static
/// corner otherwise. `on` is the breaker-filtered headline decision, so
/// for a Nagle-only plane this is exactly `[Nagle(on)]` either way —
/// the single-knob drivers' actuation, through the uniform apply path.
fn plane_settings(
    controller: &TickController<CircuitBreaker<ControlPlane>>,
    on: bool,
) -> Vec<KnobSetting> {
    let breaker = controller.inner();
    if breaker.state() == BreakerState::Closed {
        breaker.inner().settings()
    } else {
        debug_assert_eq!(on, breaker.safe_on(), "degraded decision is the safe mode");
        breaker.inner().safe_settings(on)
    }
}

/// Estimation plus multi-knob actuation: one [`ControlPlane`] decision
/// per tick, routed per-knob component views, every controlled knob
/// actuated through [`HostCtx::apply`].
#[derive(Debug)]
pub struct PlaneDriver {
    /// The estimate source.
    pub recorder: EstimateRecorder,
    controller: TickController<CircuitBreaker<ControlPlane>>,
    /// Recorded headline (Nagle) decisions (time, batching-on).
    pub toggles: Vec<(Nanos, bool)>,
}

impl PlaneDriver {
    /// Creates a driver estimating in `unit` and deciding with the given
    /// control plane (wrapped in a — possibly disabled — circuit
    /// breaker).
    pub fn new(unit: Unit, controller: TickController<CircuitBreaker<ControlPlane>>) -> Self {
        PlaneDriver {
            recorder: EstimateRecorder::new(unit),
            controller,
            toggles: Vec::new(),
        }
    }

    /// Bounds how long this driver's estimator trusts a cached remote
    /// window.
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.recorder = self.recorder.with_staleness_bound(bound);
        self
    }

    /// Validates every incoming exchange before it can influence the
    /// plane's estimate.
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.recorder = self.recorder.with_validation(config);
        self
    }

    /// The circuit breaker around the plane.
    pub fn breaker(&self) -> &CircuitBreaker<ControlPlane> {
        self.controller.inner()
    }

    /// The control plane itself.
    pub fn plane(&self) -> &ControlPlane {
        self.controller.inner().inner()
    }

    /// Runs one tick: estimate, decide across every knob, actuate each
    /// knob's setting.
    pub fn tick(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId) {
        self.recorder.tick(ctx, sock);
        if let Some(sample) = self.recorder.series.last().copied() {
            let on = self.controller.offer(ctx.now(), &sample.estimate);
            self.toggles.push((ctx.now(), on));
            for setting in plane_settings(&self.controller, on) {
                ctx.apply(sock, setting);
            }
        }
    }

    /// Fraction of ticks with batching on.
    pub fn on_fraction(&self) -> f64 {
        if self.toggles.is_empty() {
            return 0.0;
        }
        self.toggles.iter().filter(|(_, on)| *on).count() as f64 / self.toggles.len() as f64
    }
}

/// Listener-wide multi-knob actuation: the [`ListenerDriver`] shape with
/// a [`ControlPlane`] deciding on the aggregate, every knob's setting
/// applied to every accepted connection.
#[derive(Debug)]
pub struct ListenerPlaneDriver {
    /// The message unit the per-connection estimators use.
    pub unit: Unit,
    registry: EstimatorRegistry,
    controller: TickController<CircuitBreaker<ControlPlane>>,
    /// Recorded headline (Nagle) decisions (time, batching-on).
    pub toggles: Vec<(Nanos, bool)>,
    /// Recorded aggregate series.
    pub series: Vec<(Nanos, AggregateEstimate)>,
}

impl ListenerPlaneDriver {
    /// Creates a driver estimating in `unit` and deciding with the given
    /// control plane (wrapped in a — possibly disabled — circuit
    /// breaker).
    pub fn new(unit: Unit, controller: TickController<CircuitBreaker<ControlPlane>>) -> Self {
        ListenerPlaneDriver {
            unit,
            registry: EstimatorRegistry::new(WireScale::default(), 1.0),
            controller,
            toggles: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Applies a staleness bound to every per-connection estimator the
    /// registry creates.
    pub fn with_staleness_bound(mut self, bound: Nanos) -> Self {
        self.registry = self.registry.with_staleness_bound(bound);
        self
    }

    /// Applies peer-state validation to every per-connection estimator
    /// the registry creates.
    pub fn with_validation(mut self, config: ValidateConfig) -> Self {
        self.registry = self.registry.with_validation(config);
        self
    }

    /// Validation counters summed across every connection's estimator.
    pub fn validation_stats(&self) -> ValidateStats {
        self.registry.validation_stats()
    }

    /// The circuit breaker around the plane.
    pub fn breaker(&self) -> &CircuitBreaker<ControlPlane> {
        self.controller.inner()
    }

    /// The control plane itself.
    pub fn plane(&self) -> &ControlPlane {
        self.controller.inner().inner()
    }

    /// Runs one tick over every live connection: update each estimator,
    /// aggregate, decide once across every knob, actuate everywhere.
    pub fn tick(&mut self, ctx: &mut HostCtx<'_>, socks: &[SocketId]) {
        let now = ctx.now();
        for &sock in socks {
            let snaps = ctx.socket(sock).local_snapshots(now, self.unit);
            let local = EndpointSnapshots {
                unacked: snaps.unacked,
                unread: snaps.unread,
                ackdelay: snaps.ackdelay,
            };
            let remote = ctx.socket(sock).remote().unit(self.unit).cur;
            let srtt = ctx.socket(sock).srtt();
            self.registry
                .update_validated(sock.0 as u64, now, local, remote, srtt);
        }
        if let Some(agg) = self.registry.aggregate() {
            let on = self.controller.offer_aggregate(now, &agg);
            self.series.push((now, agg));
            self.toggles.push((now, on));
            let settings = plane_settings(&self.controller, on);
            for &sock in socks {
                for &setting in &settings {
                    ctx.apply(sock, setting);
                }
            }
        }
    }

    /// Connections the registry has seen.
    pub fn connections(&self) -> usize {
        self.registry.connections()
    }

    /// Fraction of ticks with batching on.
    pub fn on_fraction(&self) -> f64 {
        if self.toggles.is_empty() {
            return 0.0;
        }
        self.toggles.iter().filter(|(_, on)| *on).count() as f64 / self.toggles.len() as f64
    }

    /// Mean aggregate estimated latency over `[from, to)`.
    pub fn mean_aggregate_latency_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        let mut sum = 0u128;
        let mut n = 0u64;
        for (at, agg) in &self.series {
            if *at >= from && *at < to {
                sum += agg.latency.as_nanos() as u128;
                n += 1;
            }
        }
        (n > 0).then(|| Nanos::from_nanos((sum / n as u128) as u64))
    }
}
