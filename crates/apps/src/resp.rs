//! A RESP (REdis Serialization Protocol) subset.
//!
//! The evaluation workloads speak the protocol Redis speaks: commands are
//! arrays of bulk strings (`*N\r\n$len\r\n<bytes>\r\n...`), SET replies
//! with the simple string `+OK\r\n`, GET with a bulk string or the null
//! bulk `$-1\r\n`. Parsers are incremental — they consume a TCP byte
//! stream fed in arbitrary chunks, exactly as the server's read loop sees
//! it.

use tcpsim::Payload;

/// A client command.
///
/// Commands may carry an optional *request id* as a trailing 8-byte bulk
/// argument (`SET key value id8` / `GET key id8`). The proxy tags
/// retried and hedged upstream commands with the originating request's
/// id so the KV app can deduplicate: a retry racing its original, or a
/// hedge racing its primary, must never double-apply. Client-originated
/// traffic stays untagged and byte-identical to the plain encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `SET key value [id]`.
    Set {
        /// The key.
        key: Payload,
        /// The value.
        value: Payload,
        /// Request id for idempotent dedup (proxy-tagged traffic only).
        id: Option<u64>,
    },
    /// `GET key [id]`.
    Get {
        /// The key.
        key: Payload,
        /// Request id for idempotent dedup (proxy-tagged traffic only).
        id: Option<u64>,
    },
}

impl Command {
    /// The request id, when the command is proxy-tagged.
    pub fn id(&self) -> Option<u64> {
        match self {
            Command::Set { id, .. } | Command::Get { id, .. } => *id,
        }
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `+OK\r\n` (successful SET).
    Ok,
    /// A bulk string (GET hit).
    Value(Payload),
    /// The null bulk string (GET miss).
    Nil,
}

/// Encodes a SET command.
pub fn encode_set(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.len() + key.len() + 40);
    out.extend_from_slice(b"*3\r\n$3\r\nSET\r\n");
    push_bulk(&mut out, key);
    push_bulk(&mut out, value);
    out
}

/// Encodes a GET command.
pub fn encode_get(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 24);
    out.extend_from_slice(b"*2\r\n$3\r\nGET\r\n");
    push_bulk(&mut out, key);
    out
}

/// Encodes a SET tagged with a request id (proxy → shard traffic that may
/// be retried or hedged).
pub fn encode_set_with_id(key: &[u8], value: &[u8], id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.len() + key.len() + 56);
    out.extend_from_slice(b"*4\r\n$3\r\nSET\r\n");
    push_bulk(&mut out, key);
    push_bulk(&mut out, value);
    push_bulk(&mut out, &id.to_be_bytes());
    out
}

/// Encodes a GET tagged with a request id.
pub fn encode_get_with_id(key: &[u8], id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 40);
    out.extend_from_slice(b"*3\r\n$3\r\nGET\r\n");
    push_bulk(&mut out, key);
    push_bulk(&mut out, &id.to_be_bytes());
    out
}

/// Encodes a response.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Ok => b"+OK\r\n".to_vec(),
        Response::Nil => b"$-1\r\n".to_vec(),
        Response::Value(v) => {
            let mut out = Vec::with_capacity(v.len() + 16);
            push_bulk(&mut out, v);
            out
        }
    }
}

fn push_bulk(out: &mut Vec<u8>, data: &[u8]) {
    out.push(b'$');
    out.extend_from_slice(data.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// Incremental stream parser state shared by both directions.
#[derive(Debug, Default)]
struct StreamBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl StreamBuf {
    fn feed(&mut self, data: &[u8]) {
        // Compact before growing if most of the buffer is consumed.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    fn rest(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn unread(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Reads one `\r\n`-terminated line starting at `from`; returns the line
/// (without terminator) and the total bytes consumed.
fn read_line(data: &[u8]) -> Option<(&[u8], usize)> {
    let nl = data.windows(2).position(|w| w == b"\r\n")?;
    Some((&data[..nl], nl + 2))
}

fn parse_usize(data: &[u8]) -> Option<usize> {
    let s = std::str::from_utf8(data).ok()?;
    s.parse().ok()
}

/// Reads a `$len\r\n<bytes>\r\n` bulk string; returns the payload and the
/// bytes consumed. A `$-1` null bulk returns `None` payload.
#[allow(clippy::type_complexity)]
fn read_bulk(data: &[u8]) -> Option<(Option<&[u8]>, usize)> {
    let (header, h) = read_line(data)?;
    if header.first() != Some(&b'$') {
        return None;
    }
    if &header[1..] == b"-1" {
        return Some((None, h));
    }
    let len = parse_usize(&header[1..])?;
    if data.len() < h + len + 2 {
        return None; // incomplete
    }
    Some((Some(&data[h..h + len]), h + len + 2))
}

/// Incremental parser for client commands (the server's read side).
#[derive(Debug, Default)]
pub struct CommandParser {
    stream: StreamBuf,
}

impl CommandParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.stream.feed(data);
    }

    /// Bytes buffered but not yet parsed into a complete command.
    pub fn pending_bytes(&self) -> usize {
        self.stream.unread()
    }

    /// Extracts the next complete command, if any.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (the simulation's peers are trusted; a
    /// production implementation would return an error).
    pub fn next_command(&mut self) -> Option<Command> {
        let data = self.stream.rest();
        let (header, mut used) = read_line(data)?;
        assert_eq!(header.first(), Some(&b'*'), "expected array header");
        let nargs = parse_usize(&header[1..]).expect("array length");
        let mut args: Vec<Payload> = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            let (bulk, n) = read_bulk(&data[used..])?;
            args.push(Payload::copy_from_slice(bulk.expect("commands have no null args")));
            used += n;
        }
        self.stream.advance(used);
        let id_arg = |arg: &Payload| {
            let bytes: [u8; 8] = arg.as_ref().try_into().expect("request id is 8 bytes");
            u64::from_be_bytes(bytes)
        };
        match args[0].as_ref() {
            b"SET" => {
                assert!(
                    args.len() == 3 || args.len() == 4,
                    "SET key value [id]"
                );
                Some(Command::Set {
                    key: args[1].clone(),
                    value: args[2].clone(),
                    id: args.get(3).map(id_arg),
                })
            }
            b"GET" => {
                assert!(args.len() == 2 || args.len() == 3, "GET key [id]");
                Some(Command::Get {
                    key: args[1].clone(),
                    id: args.get(2).map(id_arg),
                })
            }
            other => panic!("unsupported command {:?}", String::from_utf8_lossy(other)),
        }
    }
}

/// Incremental parser for server responses (the client's read side).
#[derive(Debug, Default)]
pub struct ResponseParser {
    stream: StreamBuf,
}

impl ResponseParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.stream.feed(data);
    }

    /// Extracts the next complete response, if any.
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    pub fn next_response(&mut self) -> Option<Response> {
        let data = self.stream.rest();
        match data.first()? {
            b'+' => {
                let (line, used) = read_line(data)?;
                assert_eq!(line, b"+OK", "only +OK simple strings are used");
                self.stream.advance(used);
                Some(Response::Ok)
            }
            b'$' => {
                let (bulk, used) = read_bulk(data)?;
                let resp = match bulk {
                    Some(v) => Response::Value(Payload::copy_from_slice(v)),
                    None => Response::Nil,
                };
                self.stream.advance(used);
                Some(resp)
            }
            other => panic!("unexpected response type byte {other:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_roundtrip() {
        let wire = encode_set(b"key:0001", b"hello");
        let mut p = CommandParser::new();
        p.feed(&wire);
        assert_eq!(
            p.next_command(),
            Some(Command::Set {
                key: Payload::from_static(b"key:0001"),
                value: Payload::from_static(b"hello"),
                id: None,
            })
        );
        assert_eq!(p.next_command(), None);
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn get_roundtrip() {
        let mut p = CommandParser::new();
        p.feed(&encode_get(b"k"));
        assert_eq!(
            p.next_command(),
            Some(Command::Get {
                key: Payload::from_static(b"k"),
                id: None,
            })
        );
    }

    #[test]
    fn tagged_commands_roundtrip_with_ids() {
        let mut wire = encode_set_with_id(b"key:0001", b"hello", 0xDEAD_BEEF_0000_0042);
        wire.extend(encode_get_with_id(b"key:0001", 7));
        wire.extend(encode_set(b"key:0002", b"plain"));
        let mut p = CommandParser::new();
        p.feed(&wire);
        assert_eq!(
            p.next_command(),
            Some(Command::Set {
                key: Payload::from_static(b"key:0001"),
                value: Payload::from_static(b"hello"),
                id: Some(0xDEAD_BEEF_0000_0042),
            })
        );
        assert_eq!(
            p.next_command(),
            Some(Command::Get {
                key: Payload::from_static(b"key:0001"),
                id: Some(7),
            })
        );
        // Untagged traffic is unchanged and parses with no id.
        let third = p.next_command().expect("plain SET");
        assert_eq!(third.id(), None);
        assert_eq!(p.next_command(), None);
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn partial_feeds_assemble() {
        let wire = encode_set(b"key", &vec![7u8; 1000]);
        let mut p = CommandParser::new();
        // Feed one byte at a time for the header, then the rest in chunks.
        for chunk in wire.chunks(13) {
            assert_eq!(p.next_command(), None, "must not parse early");
            p.feed(chunk);
        }
        let cmd = p.next_command().expect("complete now");
        match cmd {
            Command::Set { value, .. } => assert_eq!(value.len(), 1000),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn multiple_pipelined_commands() {
        let mut wire = encode_set(b"a", b"1");
        wire.extend(encode_get(b"a"));
        wire.extend(encode_set(b"b", b"2"));
        let mut p = CommandParser::new();
        p.feed(&wire);
        assert!(matches!(p.next_command(), Some(Command::Set { .. })));
        assert!(matches!(p.next_command(), Some(Command::Get { .. })));
        assert!(matches!(p.next_command(), Some(Command::Set { .. })));
        assert_eq!(p.next_command(), None);
    }

    #[test]
    fn response_ok_roundtrip() {
        let mut p = ResponseParser::new();
        p.feed(&encode_response(&Response::Ok));
        assert_eq!(p.next_response(), Some(Response::Ok));
    }

    #[test]
    fn response_value_roundtrip() {
        let v = vec![9u8; 16384];
        let mut p = ResponseParser::new();
        p.feed(&encode_response(&Response::Value(v.clone().into())));
        assert_eq!(p.next_response(), Some(Response::Value(v.into())));
    }

    #[test]
    fn response_nil_roundtrip() {
        let mut p = ResponseParser::new();
        p.feed(&encode_response(&Response::Nil));
        assert_eq!(p.next_response(), Some(Response::Nil));
    }

    #[test]
    fn interleaved_response_stream() {
        let mut wire = encode_response(&Response::Ok);
        wire.extend(encode_response(&Response::Value(Payload::from_static(b"xy"))));
        wire.extend(encode_response(&Response::Ok));
        let mut p = ResponseParser::new();
        // Split mid-bulk.
        p.feed(&wire[..8]);
        assert_eq!(p.next_response(), Some(Response::Ok));
        assert_eq!(p.next_response(), None);
        p.feed(&wire[8..]);
        assert_eq!(
            p.next_response(),
            Some(Response::Value(Payload::from_static(b"xy")))
        );
        assert_eq!(p.next_response(), Some(Response::Ok));
    }

    #[test]
    fn buffer_compaction_preserves_stream() {
        let mut p = CommandParser::new();
        // Push enough traffic to trigger compaction several times.
        for i in 0..200 {
            let key = format!("key:{i:04}");
            p.feed(&encode_set(key.as_bytes(), &[0u8; 100]));
            let cmd = p.next_command().expect("complete command");
            match cmd {
                Command::Set { key: k, .. } => assert_eq!(k.as_ref(), key.as_bytes()),
                other => panic!("wrong {other:?}"),
            }
        }
    }

    #[test]
    fn wire_sizes_match_redis_framing() {
        // 16 B key + 16 KiB value: the paper's Figure 4a request.
        let wire = encode_set(&[b'k'; 16], &vec![0u8; 16384]);
        // *3\r\n (4) + $3\r\nSET\r\n (9) + $16\r\n key \r\n (5+16+2)
        // + $16384\r\n value \r\n (8+16384+2) = 16430.
        assert_eq!(wire.len(), 16_430);
        assert_eq!(encode_response(&Response::Ok).len(), 5);
    }
}
