//! The Lancet-like open-loop load generator.
//!
//! Requests arrive by a Poisson process at the offered rate, independent
//! of completions (open loop — the latency explosion near saturation is
//! visible, unlike closed-loop generators that self-throttle). Each
//! request's latency is measured from its arrival (generation) time to the
//! moment the client application *finishes processing* its response,
//! matching the end-to-end definition of the paper's Figure 1.
//!
//! The client also runs the measurement machinery under study:
//!
//! * a [`RequestTracker`] (`create`/`complete`) — the application-level
//!   ground truth, optionally forwarded to the server as hints;
//! * per-unit [`EstimateRecorder`]s — the byte/packet/message Little's-law
//!   estimates of §3.2 (the "estimated" curves of Figure 4);
//! * optionally a [`PolicyDriver`] toggling Nagle dynamically.

use std::collections::VecDeque;

use e2e_core::RequestTracker;
use littles::{Nanos, Snapshot};
use simnet::{Histogram, Pcg32};
use tcpsim::{App, HostCtx, SocketId, TcpConfig, WakeReason};

use crate::cost::AppCosts;
use crate::driver::{AimdDriver, EstimateRecorder, PlaneDriver, PolicyDriver};
use crate::resp::{encode_get, encode_set, Response, ResponseParser};
use crate::workload::WorkloadSpec;

const TOKEN_KIND_SHIFT: u32 = 32;
const KIND_ARRIVAL: u64 = 1;
const KIND_PROCESS: u64 = 2;
const KIND_TICK: u64 = 3;
const KIND_FLUSH: u64 = 4;
const KIND_RECONNECT: u64 = 5;

fn token(kind: u64) -> u64 {
    kind << TOKEN_KIND_SHIFT
}

/// A skewed key-selection pool: draws from a small *hot* set of key
/// indices with probability `hot_fraction`, from the *cold* remainder
/// otherwise. Used by the sharded-proxy experiments to concentrate load
/// on the shard owning the hot keys; the plain round-robin key walk stays
/// the default everywhere else.
///
/// Draws come from the pool's own RNG (forked from the `"shard.skew"`
/// named stream at the experiment level) so adding skew never perturbs
/// the client's arrival/value RNG sequence.
#[derive(Debug)]
pub struct KeyPool {
    hot: Vec<u64>,
    cold: Vec<u64>,
    hot_fraction: f64,
    rng: Pcg32,
}

impl KeyPool {
    /// Creates a pool over the given hot/cold key-index sets.
    ///
    /// # Panics
    ///
    /// Panics when either set is empty or `hot_fraction` is not in (0, 1).
    pub fn new(hot: Vec<u64>, cold: Vec<u64>, hot_fraction: f64, rng: Pcg32) -> Self {
        assert!(!hot.is_empty() && !cold.is_empty(), "both pools must be non-empty");
        assert!(
            hot_fraction > 0.0 && hot_fraction < 1.0,
            "hot_fraction must be in (0, 1)"
        );
        KeyPool {
            hot,
            cold,
            hot_fraction,
            rng,
        }
    }

    fn draw(&mut self) -> u64 {
        let (pool, r) = if self.rng.next_f64() < self.hot_fraction {
            (&self.hot, self.rng.next_u64())
        } else {
            (&self.cold, self.rng.next_u64())
        };
        pool[(r % pool.len() as u64) as usize]
    }
}

/// The load-generator application.
pub struct LancetClient {
    spec: WorkloadSpec,
    costs: AppCosts,
    config: TcpConfig,
    warmup_end: Nanos,
    measure_end: Nanos,
    tick_period: Nanos,
    use_hints: bool,

    /// The connection (after `Connected`; `None` during a crash outage).
    pub sock: Option<SocketId>,
    /// Whether the arrival/tick chains have been started (exactly once, on
    /// the first `Connected` — a reconnect must not duplicate them).
    started: bool,
    /// Delay between a `Reset` wake and the reconnect attempt.
    reconnect_backoff: Nanos,
    /// Number of `Reset` wakes observed (crash/restart fault injections).
    pub restarts_seen: u64,
    parser: ResponseParser,
    /// In-flight requests: (arrival time, is_set), FIFO (RESP responses
    /// arrive in order).
    pending: VecDeque<(Nanos, bool)>,
    backlog: VecDeque<Vec<u8>>,
    call_pending: bool,
    flush_pending: bool,
    key_counter: u64,
    key_pool: Option<KeyPool>,

    /// Measured latency over the measurement window.
    pub hist: Histogram,
    /// Application-level request tracker (ground truth / hints source).
    pub tracker: RequestTracker,
    tracker_at_warmup: Option<Snapshot>,
    tracker_at_end: Option<Snapshot>,
    /// Little's-law estimate recorders (one per unit under study).
    pub recorders: Vec<EstimateRecorder>,
    /// Optional dynamic-Nagle policy.
    pub policy: Option<PolicyDriver>,
    /// Optional §5 AIMD batch-limit policy.
    pub aimd: Option<AimdDriver>,
    /// Optional multi-knob control plane.
    pub plane: Option<PlaneDriver>,

    /// Requests issued.
    pub sent: u64,
    /// Responses fully processed.
    pub completed: u64,
    /// Responses (for requests issued inside the window) fully processed.
    pub completed_in_window: u64,
}

impl LancetClient {
    /// Creates a load generator.
    pub fn new(
        spec: WorkloadSpec,
        costs: AppCosts,
        config: TcpConfig,
        warmup_end: Nanos,
        measure_end: Nanos,
    ) -> Self {
        assert!(warmup_end < measure_end, "warmup must precede measurement");
        LancetClient {
            spec,
            costs,
            config,
            warmup_end,
            measure_end,
            tick_period: Nanos::from_micros(500),
            use_hints: false,
            sock: None,
            started: false,
            reconnect_backoff: Nanos::from_millis(1),
            restarts_seen: 0,
            parser: ResponseParser::new(),
            pending: VecDeque::new(),
            backlog: VecDeque::new(),
            call_pending: false,
            flush_pending: false,
            key_counter: 0,
            key_pool: None,
            hist: Histogram::new(),
            tracker: RequestTracker::new(Nanos::ZERO),
            tracker_at_warmup: None,
            tracker_at_end: None,
            recorders: Vec::new(),
            policy: None,
            aimd: None,
            plane: None,
            sent: 0,
            completed: 0,
            completed_in_window: 0,
        }
    }

    /// Forwards the tracker's queue state to the server as hints (§3.3).
    pub fn with_hints(mut self) -> Self {
        self.use_hints = true;
        self
    }

    /// Overrides the estimator/policy tick cadence (default 500 µs).
    /// Long-horizon tests coarsen this so simulating hours of virtual
    /// time stays cheap; figure experiments keep the default.
    pub fn with_tick_period(mut self, period: Nanos) -> Self {
        assert!(!period.is_zero(), "tick period must be positive");
        self.tick_period = period;
        self
    }

    /// Replaces the round-robin key walk with skewed draws from a
    /// [`KeyPool`] (the sharded-proxy hot-shard workload).
    pub fn with_key_pool(mut self, pool: KeyPool) -> Self {
        self.key_pool = Some(pool);
        self
    }

    /// Adds a Little's-law estimate recorder for a unit.
    pub fn with_recorder(mut self, recorder: EstimateRecorder) -> Self {
        self.recorders.push(recorder);
        self
    }

    /// Attaches a dynamic-Nagle policy (requires `NagleMode::Dynamic`).
    pub fn with_policy(mut self, policy: PolicyDriver) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a §5 AIMD batch-limit policy (used with `NagleMode::Off`;
    /// the limit gate replaces Nagle).
    pub fn with_aimd(mut self, aimd: AimdDriver) -> Self {
        self.aimd = Some(aimd);
        self
    }

    /// Attaches a multi-knob control plane (requires `NagleMode::Dynamic`
    /// so the plane's Nagle decisions take effect).
    pub fn with_plane(mut self, plane: PlaneDriver) -> Self {
        self.plane = Some(plane);
        self
    }

    /// The measurement window.
    pub fn window(&self) -> (Nanos, Nanos) {
        (self.warmup_end, self.measure_end)
    }

    /// Achieved goodput over the measurement window, responses/second.
    pub fn achieved_rps(&self) -> f64 {
        let window = self.measure_end - self.warmup_end;
        self.completed_in_window as f64 / window.as_secs_f64()
    }

    /// Application-level (tracker) averages over the measurement window —
    /// the ground truth the §3.3 hints convey.
    pub fn tracker_averages(&self) -> Option<littles::Averages> {
        let a = self.tracker_at_warmup?;
        let b = self.tracker_at_end?;
        b.averages_since(&a)
    }

    fn next_wire(&mut self, ctx: &mut HostCtx<'_>) -> (Vec<u8>, bool) {
        let is_set = self.spec.set_ratio >= 1.0 || ctx.rng.next_f64() < self.spec.set_ratio;
        let key_idx = match self.key_pool.as_mut() {
            Some(pool) => pool.draw(),
            None => self.key_counter % self.spec.key_space as u64,
        };
        self.key_counter += 1;
        let key = format!("key:{key_idx:012}");
        debug_assert_eq!(key.len(), self.spec.key_size);
        if is_set {
            let mut value = vec![0u8; self.spec.value_size];
            // Cheap deterministic fill (contents are irrelevant, but
            // non-constant data keeps accidental compression-like
            // shortcuts impossible).
            let n = 8.min(value.len());
            ctx.rng.fill_bytes(&mut value[..n]);
            (encode_set(key.as_bytes(), &value), true)
        } else {
            (encode_get(key.as_bytes()), false)
        }
    }

    fn arrival(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let Some(sock) = self.sock else {
            // Crashed: the open-loop arrival process keeps running, but
            // requests during the outage are lost (not queued) — the
            // restarted process has no memory of them.
            let gap = ctx.rng.exp_duration(self.spec.mean_interarrival());
            ctx.call_after(gap, token(KIND_ARRIVAL));
            return;
        };
        let (wire, is_set) = self.next_wire(ctx);
        self.tracker.create(now, 1);
        ctx.charge_app(self.costs.client_request(wire.len()));
        if self.backlog.is_empty() {
            let accepted = if self.use_hints {
                let hint = self.tracker.snapshot(now);
                ctx.send_with_hint(sock, &wire, hint)
            } else {
                ctx.send(sock, &wire)
            };
            if accepted < wire.len() {
                self.backlog.push_back(wire[accepted..].to_vec());
            }
        } else {
            self.backlog.push_back(wire);
        }
        self.pending.push_back((now, is_set));
        self.sent += 1;
        // Self-perpetuating Poisson arrivals.
        let gap = ctx.rng.exp_duration(self.spec.mean_interarrival());
        ctx.call_after(gap, token(KIND_ARRIVAL));
    }

    fn process(&mut self, ctx: &mut HostCtx<'_>) {
        self.call_pending = false;
        let now = ctx.now();
        let Some(sock) = self.sock else {
            return; // crashed between the wake and this call
        };
        let (data, _) = ctx.recv(sock, usize::MAX);
        self.parser.feed(&data);
        while let Some(resp) = self.parser.next_response() {
            let payload = match &resp {
                Response::Value(v) => v.len(),
                Response::Ok | Response::Nil => 0,
            };
            let done = ctx.charge_app(self.costs.client_response(payload));
            let (sent_at, _is_set) = self
                .pending
                .pop_front()
                .expect("response without a pending request");
            self.completed += 1;
            self.tracker.complete(now, 1);
            if sent_at >= self.warmup_end && sent_at < self.measure_end {
                self.hist.record(done.saturating_sub(sent_at));
                self.completed_in_window += 1;
            }
        }
    }

    fn tick(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        if now >= self.warmup_end && self.tracker_at_warmup.is_none() {
            self.tracker_at_warmup = Some(self.tracker.snapshot(now));
        }
        if now >= self.measure_end && self.tracker_at_end.is_none() {
            self.tracker_at_end = Some(self.tracker.snapshot(now));
        }
        if let Some(sock) = self.sock {
            for rec in &mut self.recorders {
                rec.tick(ctx, sock);
            }
            if let Some(policy) = self.policy.as_mut() {
                policy.tick(ctx, sock);
            }
            if let Some(aimd) = self.aimd.as_mut() {
                aimd.tick(ctx, sock);
            }
            if let Some(plane) = self.plane.as_mut() {
                plane.tick(ctx, sock);
            }
        }
        ctx.call_after(self.tick_period, token(KIND_TICK));
    }

    fn flush(&mut self, ctx: &mut HostCtx<'_>) {
        self.flush_pending = false;
        let Some(sock) = self.sock else {
            return; // crashed between the wake and this call
        };
        while let Some(front) = self.backlog.front_mut() {
            let accepted = ctx.send(sock, front);
            if accepted < front.len() {
                front.drain(..accepted);
                break;
            }
            self.backlog.pop_front();
        }
    }
}


impl App for LancetClient {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // `sock` is assigned on `Connected` (same path as a reconnect);
        // nothing runs on this socket before that wake.
        ctx.connect(self.config);
    }

    fn on_wake(&mut self, ctx: &mut HostCtx<'_>, sock: SocketId, reason: WakeReason) {
        match reason {
            WakeReason::Connected => {
                self.sock = Some(sock);
                if !self.started {
                    self.started = true;
                    let gap = ctx.rng.exp_duration(self.spec.mean_interarrival());
                    ctx.call_after(gap, token(KIND_ARRIVAL));
                    ctx.call_after(self.tick_period, token(KIND_TICK));
                }
            }
            WakeReason::Readable => {
                if !self.call_pending {
                    self.call_pending = true;
                    ctx.wake_app_thread(token(KIND_PROCESS));
                }
            }
            WakeReason::Writable => {
                if !self.backlog.is_empty() && !self.flush_pending {
                    self.flush_pending = true;
                    ctx.call_at(ctx.app_free_at(), token(KIND_FLUSH));
                }
            }
            WakeReason::Accepted => {}
            WakeReason::Reset => {
                // The process crashed: every pending request's response is
                // lost with the connection. Complete them in the tracker
                // (conservation — the restarted process will never see
                // them) without recording latencies, forget all parse and
                // backlog state, and reconnect after a short backoff. The
                // arrival and tick chains keep running through the outage.
                let now = ctx.now();
                self.restarts_seen += 1;
                let lost = self.pending.len() as u32;
                if lost > 0 {
                    self.tracker.complete(now, lost);
                }
                self.pending.clear();
                self.backlog.clear();
                self.parser = ResponseParser::new();
                self.call_pending = false;
                self.flush_pending = false;
                self.sock = None;
                ctx.call_after(self.reconnect_backoff, token(KIND_RECONNECT));
            }
        }
    }

    fn on_call(&mut self, ctx: &mut HostCtx<'_>, tok: u64) {
        match tok >> TOKEN_KIND_SHIFT {
            KIND_ARRIVAL => self.arrival(ctx),
            KIND_PROCESS => self.process(ctx),
            KIND_TICK => self.tick(ctx),
            KIND_FLUSH => self.flush(ctx),
            KIND_RECONNECT => {
                if self.sock.is_none() {
                    ctx.connect(self.config);
                }
            }
            other => panic!("unknown client token kind {other}"),
        }
    }
}
