//! The in-memory key-value store behind the Redis-like server.

use std::collections::{HashMap, HashSet, VecDeque};

use tcpsim::Payload;

use crate::resp::{Command, Response};

/// How many recently applied request ids the dedup window remembers.
/// Retries and hedges race their originals by at most a few deadlines, so
/// a few thousand requests of memory is orders of magnitude more than the
/// proxy can have outstanding.
const DEDUP_WINDOW: usize = 4096;

/// A trivially simple hash-map KV store.
///
/// Commands tagged with a request id (see [`Command::id`]) are applied
/// *idempotently*: a SET whose id was already applied is acknowledged
/// without re-executing, so a retry racing its original — or a hedge
/// racing its primary — never double-applies. The window of remembered
/// ids is bounded ([`DEDUP_WINDOW`]); untagged commands bypass it.
#[derive(Debug, Default)]
pub struct KvStore {
    map: HashMap<Payload, Payload>,
    sets: u64,
    gets: u64,
    hits: u64,
    /// Applied tagged-SET ids, membership set + FIFO eviction order.
    seen: HashSet<u64>,
    seen_order: VecDeque<u64>,
    dedup_hits: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a tagged-SET id; true when it was already applied.
    fn already_applied(&mut self, id: u64) -> bool {
        if self.seen.contains(&id) {
            self.dedup_hits += 1;
            return true;
        }
        self.seen.insert(id);
        self.seen_order.push_back(id);
        if self.seen_order.len() > DEDUP_WINDOW {
            let old = self.seen_order.pop_front().expect("non-empty");
            self.seen.remove(&old);
        }
        false
    }

    /// Executes one command, producing its response.
    pub fn execute(&mut self, cmd: Command) -> Response {
        match cmd {
            Command::Set { key, value, id } => {
                if let Some(id) = id {
                    if self.already_applied(id) {
                        // Duplicate delivery of an already-applied write:
                        // acknowledge without mutating (or re-counting).
                        return Response::Ok;
                    }
                }
                self.sets += 1;
                self.map.insert(key, value);
                Response::Ok
            }
            Command::Get { key, id: _ } => {
                // Reads are naturally idempotent; re-executing a duplicate
                // GET is harmless and keeps the response fresh.
                self.gets += 1;
                match self.map.get(&key) {
                    Some(v) => {
                        self.hits += 1;
                        Response::Value(v.clone())
                    }
                    None => Response::Nil,
                }
            }
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// SETs executed.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// GETs executed.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// GET hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Duplicate tagged SETs suppressed by the idempotency window.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get_hits() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.execute(Command::Set {
                key: Payload::from_static(b"a"),
                value: Payload::from_static(b"1"),
                id: None,
            }),
            Response::Ok
        );
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"a"),
                id: None,
            }),
            Response::Value(Payload::from_static(b"1"))
        );
        assert_eq!(kv.hits(), 1);
    }

    #[test]
    fn get_missing_is_nil() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"nope"),
                id: None,
            }),
            Response::Nil
        );
        assert_eq!(kv.gets(), 1);
        assert_eq!(kv.hits(), 0);
    }

    #[test]
    fn set_overwrites() {
        let mut kv = KvStore::new();
        for v in [b"1".as_ref(), b"2".as_ref()] {
            kv.execute(Command::Set {
                key: Payload::from_static(b"k"),
                value: Payload::copy_from_slice(v),
                id: None,
            });
        }
        assert_eq!(kv.len(), 1);
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"k"),
                id: None,
            }),
            Response::Value(Payload::from_static(b"2"))
        );
    }

    #[test]
    fn tagged_set_applies_exactly_once() {
        let mut kv = KvStore::new();
        let set = |v: &'static [u8]| Command::Set {
            key: Payload::from_static(b"k"),
            value: Payload::from_static(v),
            id: Some(42),
        };
        assert_eq!(kv.execute(set(b"first")), Response::Ok);
        // A retry or hedge duplicate: acknowledged, never re-applied —
        // even if the duplicate carries different bytes.
        assert_eq!(kv.execute(set(b"dup")), Response::Ok);
        assert_eq!(kv.sets(), 1);
        assert_eq!(kv.dedup_hits(), 1);
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"k"),
                id: None,
            }),
            Response::Value(Payload::from_static(b"first"))
        );
        // A different id is a different request.
        assert_eq!(
            kv.execute(Command::Set {
                key: Payload::from_static(b"k"),
                value: Payload::from_static(b"second"),
                id: Some(43),
            }),
            Response::Ok
        );
        assert_eq!(kv.sets(), 2);
    }

    #[test]
    fn untagged_sets_bypass_the_window_and_duplicate_gets_are_safe() {
        let mut kv = KvStore::new();
        for _ in 0..3 {
            kv.execute(Command::Set {
                key: Payload::from_static(b"k"),
                value: Payload::from_static(b"v"),
                id: None,
            });
        }
        assert_eq!(kv.sets(), 3);
        assert_eq!(kv.dedup_hits(), 0);
        for _ in 0..2 {
            assert_eq!(
                kv.execute(Command::Get {
                    key: Payload::from_static(b"k"),
                    id: Some(7),
                }),
                Response::Value(Payload::from_static(b"v"))
            );
        }
        assert_eq!(kv.gets(), 2);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let mut kv = KvStore::new();
        for id in 0..(DEDUP_WINDOW as u64 + 10) {
            kv.execute(Command::Set {
                key: Payload::from_static(b"k"),
                value: Payload::from_static(b"v"),
                id: Some(id),
            });
        }
        assert!(kv.seen.len() <= DEDUP_WINDOW);
        // The oldest ids were evicted: re-sending id 0 applies again.
        kv.execute(Command::Set {
            key: Payload::from_static(b"k"),
            value: Payload::from_static(b"v"),
            id: Some(0),
        });
        assert_eq!(kv.dedup_hits(), 0);
    }
}
