//! The in-memory key-value store behind the Redis-like server.

use std::collections::HashMap;

use tcpsim::Payload;

use crate::resp::{Command, Response};

/// A trivially simple hash-map KV store.
#[derive(Debug, Default)]
pub struct KvStore {
    map: HashMap<Payload, Payload>,
    sets: u64,
    gets: u64,
    hits: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes one command, producing its response.
    pub fn execute(&mut self, cmd: Command) -> Response {
        match cmd {
            Command::Set { key, value } => {
                self.sets += 1;
                self.map.insert(key, value);
                Response::Ok
            }
            Command::Get { key } => {
                self.gets += 1;
                match self.map.get(&key) {
                    Some(v) => {
                        self.hits += 1;
                        Response::Value(v.clone())
                    }
                    None => Response::Nil,
                }
            }
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// SETs executed.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// GETs executed.
    pub fn gets(&self) -> u64 {
        self.gets
    }

    /// GET hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_get_hits() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.execute(Command::Set {
                key: Payload::from_static(b"a"),
                value: Payload::from_static(b"1"),
            }),
            Response::Ok
        );
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"a")
            }),
            Response::Value(Payload::from_static(b"1"))
        );
        assert_eq!(kv.hits(), 1);
    }

    #[test]
    fn get_missing_is_nil() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"nope")
            }),
            Response::Nil
        );
        assert_eq!(kv.gets(), 1);
        assert_eq!(kv.hits(), 0);
    }

    #[test]
    fn set_overwrites() {
        let mut kv = KvStore::new();
        for v in [b"1".as_ref(), b"2".as_ref()] {
            kv.execute(Command::Set {
                key: Payload::from_static(b"k"),
                value: Payload::copy_from_slice(v),
            });
        }
        assert_eq!(kv.len(), 1);
        assert_eq!(
            kv.execute(Command::Get {
                key: Payload::from_static(b"k")
            }),
            Response::Value(Payload::from_static(b"2"))
        );
    }
}
