//! Calibrated CPU cost profiles.
//!
//! These profiles translate stack and application activity into simulated
//! CPU time. They are the substitution for the paper's physical testbed
//! (dual Xeon E5-2660 v4 machines): the *relative* weights — per-packet
//! vs. per-request vs. per-transmit costs — are what determine the shape
//! of every figure, and they are chosen so that
//!
//! * the server application thread (the single-threaded Redis analogue) is
//!   the system bottleneck for the Figure 4 workload,
//! * transmit-path work (descriptor + doorbell) is a substantial share of
//!   per-response cost, which is exactly the share Nagle batching
//!   amortizes under load, and
//! * client-side per-response costs are significant enough that a VM
//!   multiplier (Figure 2) can flip the batching outcome.
//!
//! Absolute values are in the right order of magnitude for commodity
//! servers (hundreds of ns per packet, µs-scale syscalls under spectre-era
//! mitigations) but are *not* fitted to the authors' hardware; the paper's
//! absolute kRPS numbers are not reproduction targets, its curve shapes
//! are (see EXPERIMENTS.md).

use littles::Nanos;
use tcpsim::CostConfig;

/// Application-level processing costs (charged by the apps themselves, on
/// top of the stack costs in [`CostConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppCosts {
    /// Server: fixed cost per processing pass (epoll return, dispatch) —
    /// the paper's amortizable per-batch cost β from Figure 1.
    pub server_batch_base: Nanos,
    /// Server: fixed cost to parse + execute one request (hash, insert).
    pub server_request_base: Nanos,
    /// Server: additional cost per KiB of request payload (copy, alloc).
    pub server_request_per_kib: Nanos,
    /// Client: fixed cost to generate one request.
    pub client_request_base: Nanos,
    /// Client: additional generation cost per KiB of value.
    pub client_request_per_kib: Nanos,
    /// Client: fixed cost to parse/process one response — the paper's `c`.
    pub client_response_base: Nanos,
    /// Client: additional processing cost per KiB of response payload.
    pub client_response_per_kib: Nanos,
    /// Proxy: fixed cost to parse and forward one command or response
    /// (no store access — route, re-frame, write).
    pub proxy_forward_base: Nanos,
    /// Proxy: additional forwarding cost per KiB of payload.
    pub proxy_forward_per_kib: Nanos,
}

impl Default for AppCosts {
    fn default() -> Self {
        AppCosts {
            server_batch_base: Nanos::from_nanos(1_000),
            server_request_base: Nanos::from_nanos(1_500),
            server_request_per_kib: Nanos::from_nanos(100),
            client_request_base: Nanos::from_nanos(500),
            client_request_per_kib: Nanos::from_nanos(30),
            client_response_base: Nanos::from_nanos(300),
            client_response_per_kib: Nanos::from_nanos(60),
            proxy_forward_base: Nanos::from_nanos(800),
            proxy_forward_per_kib: Nanos::from_nanos(40),
        }
    }
}

impl AppCosts {
    /// Server cost for a request with `payload` bytes.
    pub fn server_request(&self, payload: usize) -> Nanos {
        self.server_request_base
            + Nanos::from_nanos(self.server_request_per_kib.as_nanos() * payload as u64 / 1024)
    }

    /// Client cost to generate a request with `payload` bytes.
    pub fn client_request(&self, payload: usize) -> Nanos {
        self.client_request_base
            + Nanos::from_nanos(self.client_request_per_kib.as_nanos() * payload as u64 / 1024)
    }

    /// Client cost to process a response with `payload` bytes (the `c` of
    /// Figure 1).
    pub fn client_response(&self, payload: usize) -> Nanos {
        self.client_response_base
            + Nanos::from_nanos(self.client_response_per_kib.as_nanos() * payload as u64 / 1024)
    }

    /// Proxy cost to route one command or response with `payload` bytes.
    pub fn proxy_forward(&self, payload: usize) -> Nanos {
        self.proxy_forward_base
            + Nanos::from_nanos(self.proxy_forward_per_kib.as_nanos() * payload as u64 / 1024)
    }
}

/// A complete cost profile for one experiment.
#[derive(Debug, Clone, Copy, PartialEq)] // lint:allow(float-eq): bit-exact equality is intended — determinism tests pin exact values
pub struct CostProfile {
    /// Stack costs on the client host.
    pub client_stack: CostConfig,
    /// Stack costs on the server host.
    pub server_stack: CostConfig,
    /// Application costs.
    pub app: AppCosts,
    /// Multiplier applied to the client's *application* CPU context
    /// (1.0 = bare metal; > 1 models virtualization overhead, Figure 2).
    pub client_app_multiplier: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl CostProfile {
    /// The calibrated bare-metal profile used by the figure experiments.
    pub fn calibrated() -> Self {
        let client_stack = CostConfig {
            rx_per_delivery: Nanos::from_nanos(2_000),
            rx_per_packet: Nanos::from_nanos(150),
            rx_per_kib: Nanos::from_nanos(40),
            tx_per_segment: Nanos::from_nanos(500),
            tx_per_kib: Nanos::from_nanos(30),
            tx_doorbell: Nanos::from_nanos(500),
            tx_ack: Nanos::from_nanos(400),
            syscall: Nanos::from_nanos(400),
            app_wakeup: Nanos::from_nanos(1_000),
        };
        let server_stack = CostConfig {
            // The per-delivery (post-GRO skb) charge is the share of
            // receive cost that sender-side batching amortizes: under
            // backlog, Nagle + TSO fill 64 KiB trains, cutting deliveries
            // per request by ~6x.
            rx_per_delivery: Nanos::from_nanos(4_000),
            rx_per_packet: Nanos::from_nanos(150),
            rx_per_kib: Nanos::from_nanos(40),
            // Transmit descriptors + doorbell MMIO: the per-response app
            // cost that response batching moves off the app thread.
            tx_per_segment: Nanos::from_nanos(1_500),
            tx_per_kib: Nanos::from_nanos(30),
            tx_doorbell: Nanos::from_nanos(1_500),
            tx_ack: Nanos::from_nanos(600),
            syscall: Nanos::from_nanos(500),
            app_wakeup: Nanos::from_nanos(1_500),
        };
        CostProfile {
            client_stack,
            server_stack,
            app: AppCosts::default(),
            client_app_multiplier: 1.0,
        }
    }

    /// The two-tier shard profile: the shard's per-delivery receive work
    /// dominates (a storage node's deep softirq path), so a hot shard
    /// fed one small delivery per request saturates its receive context
    /// — while upstream batching that coalesces requests into shared
    /// deliveries amortizes almost all of it away. An idle shard has
    /// receive capacity to burn and loses nothing by skipping batching:
    /// the regime where per-upstream batching choices must genuinely
    /// differ per shard. (The application thread cannot rescue the
    /// receive path: its own per-pass overhead self-amortizes under
    /// backlog, per-delivery work does not.)
    pub fn shard_tier() -> Self {
        let mut p = Self::calibrated();
        p.server_stack.rx_per_delivery = Nanos::from_micros(16);
        p.app.server_request_base = Nanos::from_micros(4);
        p.app.server_batch_base = Nanos::from_micros(10);
        p
    }

    /// The Figure 2 VM profile: same hardware, but the client's guest work
    /// costs substantially more CPU (vm-exits, nested paging, virtio).
    pub fn vm_client() -> Self {
        CostProfile {
            client_app_multiplier: 2.5,
            ..Self::fig2_bare()
        }
    }

    /// The Figure 2 bare-metal profile: a heavier server application (the
    /// fixed 20 kRPS load sits at ~70% of one core) with a pronounced
    /// per-batch cost β, and a real per-response client cost `c` — the
    /// regime where Figure 1's tradeoff plays out at a fixed load.
    pub fn fig2_bare() -> Self {
        let mut p = Self::calibrated();
        p.app.server_batch_base = Nanos::from_micros(12);
        p.app.server_request_base = Nanos::from_micros(18);
        p.app.client_response_base = Nanos::from_micros(4);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kib_scaling() {
        let a = AppCosts::default();
        let small = a.server_request(100);
        let large = a.server_request(16 * 1024);
        assert!(large > small);
        assert_eq!(
            (large - small).as_nanos(),
            a.server_request_per_kib.as_nanos() * 16 - a.server_request_per_kib.as_nanos() * 100 / 1024
        );
    }

    #[test]
    fn vm_profile_only_changes_client_multiplier() {
        // The VM profile is the Figure 2 bare-metal profile plus the
        // client-side multiplier — nothing else may differ (Figure 2b:
        // the server's view is identical).
        let bare = CostProfile::fig2_bare();
        let vm = CostProfile::vm_client();
        assert_eq!(bare.server_stack, vm.server_stack);
        assert_eq!(bare.client_stack, vm.client_stack);
        assert_eq!(bare.app, vm.app);
        assert!(vm.client_app_multiplier > bare.client_app_multiplier);
    }

    #[test]
    fn calibration_invariants() {
        // The properties the figure shapes rely on (see module docs):
        let p = CostProfile::calibrated();
        // 1. Server per-request app cost (16 KiB SET) exceeds the client's,
        //    so the server is the bottleneck.
        let server_req = p.app.server_request(16 * 1024) + p.server_stack.syscall;
        let client_req = p.app.client_request(16 * 1024) + p.client_stack.syscall;
        assert!(server_req > client_req);
        // 2. The server's per-delivery receive cost is a large share of
        //    per-request softirq work — the share sender batching
        //    amortizes (a no-backlog request arrives as ~2 deliveries).
        let per_req_delivery = p.server_stack.rx_per_delivery * 2;
        let per_req_packets = p.server_stack.rx_per_packet * 12;
        assert!(per_req_delivery > per_req_packets);
    }
}
