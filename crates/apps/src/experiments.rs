//! The paper's figures as runnable experiments.
//!
//! Each function regenerates one figure's data on the simulated testbed
//! and returns a serializable structure the examples and benches print.
//! See EXPERIMENTS.md for the paper-vs-measured comparison.

use batchpolicy::{figure1_model, BatchOutcome, Figure1Params, Objective};
use littles::Nanos;

use crate::runner::{run_point, NagleSetting, PointResult, RunConfig};
use crate::sweep::{run_sweep, SweepResult};
use crate::workload::WorkloadSpec;
use crate::cost::CostProfile;

/// The paper's 500 µs latency SLO.
pub const PAPER_SLO: Nanos = Nanos::from_micros(500);

/// Figure 1: the analytical model for c ∈ {1, 3, 5} (and a few more).
pub fn figure1() -> Vec<BatchOutcome> {
    (0..=6)
        .map(|c| figure1_model(Figure1Params::paper(c as f64)))
        .collect()
}

/// One cell of Figure 2: a fixed-load run on one client platform with one
/// Nagle setting.
#[derive(Debug, Clone)]
pub struct Figure2Cell {
    /// Human-readable platform label.
    pub platform: String,
    /// Whether Nagle was on.
    pub nagle_on: bool,
    /// The run's results.
    pub result: PointResult,
}

/// Figure 2: bare-metal vs. VM client at a fixed 20 kRPS.
#[derive(Debug, Clone)]
pub struct Figure2Data {
    /// The four cells: (bare, off), (bare, on), (vm, off), (vm, on).
    pub cells: Vec<Figure2Cell>,
}

impl Figure2Data {
    fn cell(&self, platform: &str, nagle_on: bool) -> &PointResult {
        &self
            .cells
            .iter()
            .find(|c| c.platform == platform && c.nagle_on == nagle_on)
            .expect("cell exists")
            .result
    }

    /// (a) Client CPU: VM vs. bare metal (no-Nagle runs).
    pub fn client_cpu_ratio(&self) -> f64 {
        let total = |r: &PointResult| r.client_cpu.app + r.client_cpu.softirq;
        total(self.cell("vm", false)) / total(self.cell("bare", false))
    }

    /// (b) Server CPU: VM vs. bare metal (should be ≈ 1).
    pub fn server_cpu_ratio(&self) -> f64 {
        let total = |r: &PointResult| r.server_cpu.app + r.server_cpu.softirq;
        total(self.cell("vm", false)) / total(self.cell("bare", false))
    }

    /// (c) Does Nagle help (lower measured latency) on each platform?
    pub fn nagle_helps(&self, platform: &str) -> bool {
        let on = self.cell(platform, true).measured_mean;
        let off = self.cell(platform, false).measured_mean;
        match (on, off) {
            (Some(on), Some(off)) => on < off,
            _ => false,
        }
    }
}

/// Runs Figure 2: the same fixed-rate workload with the client on "bare
/// metal" and "in a VM" (application CPU multiplier), Nagle on and off.
pub fn figure2(rate_rps: f64, warmup: Nanos, measure: Nanos, seed: u64) -> Figure2Data {
    let mut cells = Vec::new();
    for (platform, profile) in [
        ("bare", CostProfile::fig2_bare()),
        ("vm", CostProfile::vm_client()),
    ] {
        for nagle_on in [false, true] {
            let cfg = RunConfig {
                workload: WorkloadSpec::fig2(rate_rps, 4096),
                profile,
                nagle: if nagle_on {
                    NagleSetting::On
                } else {
                    NagleSetting::Off
                },
                use_hints: true,
                warmup,
                measure,
                seed,
                num_clients: 1,
                overrides: crate::runner::Overrides::default(),
            };
            cells.push(Figure2Cell {
                platform: platform.to_string(),
                nagle_on,
                result: run_point(&cfg),
            });
        }
    }
    Figure2Data { cells }
}

/// Figure 4 data: the sweep plus the derived headline quantities.
#[derive(Debug, Clone)]
pub struct Figure4Data {
    /// Which variant ("4a" or "4b").
    pub variant: String,
    /// The full sweep.
    pub sweep: SweepResult,
    /// The SLO used.
    pub slo: Nanos,
    /// Highest SLO-compliant rate with Nagle off.
    pub sustainable_off: Option<f64>,
    /// Highest SLO-compliant rate with Nagle on.
    pub sustainable_on: Option<f64>,
    /// Range-extension factor (paper 4a: ≈ 1.93×).
    pub extension_factor: Option<f64>,
    /// Measured cutoff rate (where Nagle starts winning).
    pub cutoff_measured: Option<f64>,
    /// Byte-estimate cutoff rate (4a: coincides; 4b: does not).
    pub cutoff_estimated: Option<f64>,
}

fn figure4(
    variant: &str,
    rates: &[f64],
    spec_at: impl Fn(f64) -> WorkloadSpec,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> Figure4Data {
    let base = RunConfig {
        warmup,
        measure,
        seed,
        ..RunConfig::new(spec_at(rates[0]), NagleSetting::Off)
    };
    let sweep = run_sweep(rates, spec_at, &base, false);
    let sustainable_off = sweep.sustainable_rate(PAPER_SLO, |r| &r.off);
    let sustainable_on = sweep.sustainable_rate(PAPER_SLO, |r| &r.on);
    let extension_factor = match (sustainable_off, sustainable_on) {
        (Some(off), Some(on)) if off > 0.0 => Some(on / off),
        _ => None,
    };
    Figure4Data {
        variant: variant.to_string(),
        cutoff_measured: sweep.cutoff_rate(),
        cutoff_estimated: sweep.estimated_cutoff_rate(),
        sweep,
        slo: PAPER_SLO,
        sustainable_off,
        sustainable_on,
        extension_factor,
    }
}

/// The default rate grid for Figure 4 sweeps (requests/second), spanning
/// from well below the measured cutoff (~75 kRPS) past both knees
/// (no-Nagle ≈ 88 kRPS, Nagle ≈ 115 kRPS with the calibrated profile).
pub fn default_rates() -> Vec<f64> {
    vec![
        5_000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0, 60_000.0, 65_000.0, 70_000.0,
        75_000.0, 80_000.0, 85_000.0, 88_000.0, 95_000.0, 105_000.0, 115_000.0,
    ]
}

/// Figure 4a: SET-only, 16 B keys, 16 KiB values.
pub fn figure4a(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> Figure4Data {
    figure4("4a", rates, WorkloadSpec::fig4a, warmup, measure, seed)
}

/// Figure 4b: SET:GET = 95:5 — the byte-unit estimate degrades.
pub fn figure4b(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> Figure4Data {
    figure4("4b", rates, WorkloadSpec::fig4b, warmup, measure, seed)
}

/// One fan-in row: the same aggregate load split across `num_clients`
/// connections.
#[derive(Debug, Clone)]
pub struct FaninRow {
    /// Concurrent client connections.
    pub num_clients: usize,
    /// The load sweep at this fan-in.
    pub sweep: SweepResult,
    /// Measured cutoff rate (where Nagle starts winning) at this fan-in.
    pub cutoff_measured: Option<f64>,
    /// Byte-estimate cutoff rate at this fan-in.
    pub cutoff_estimated: Option<f64>,
}

/// The fan-in experiment: how the Nagle cutoff moves as one aggregate
/// load spreads over more connections.
#[derive(Debug, Clone)]
pub struct FaninData {
    /// One row per fan-in width, ascending.
    pub rows: Vec<FaninRow>,
}

impl FaninData {
    /// The measured cutoff at a given fan-in width.
    pub fn cutoff_for(&self, num_clients: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.num_clients == num_clients)
            .and_then(|r| r.cutoff_measured)
    }
}

/// Runs the fan-in experiment: for each `N ∈ ns`, sweep the *aggregate*
/// offered rate over `rates` with the load split across N connections
/// into one shared server.
///
/// Per-connection rates shrink as N grows, so each connection's Nagle
/// hold waits longer for enough bytes (or the ACK) to flush — the
/// batching-on latency penalty grows with N while the no-Nagle curve
/// stays nearly N-independent until the shared server CPU collapses.
/// The cutoff where batching starts winning therefore moves *right*
/// (to higher aggregate rates) as N grows, converging on the collapse
/// point itself; the throughput-weighted aggregate estimate identifies
/// it at every width.
pub fn fanin(
    ns: &[usize],
    rates: &[f64],
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> FaninData {
    let rows = ns
        .iter()
        .map(|&n| {
            let base = RunConfig {
                warmup,
                measure,
                seed,
                num_clients: n,
                ..RunConfig::new(WorkloadSpec::fig4a(rates[0]), NagleSetting::Off)
            };
            let sweep = run_sweep(rates, WorkloadSpec::fig4a, &base, false);
            FaninRow {
                num_clients: n,
                cutoff_measured: sweep.cutoff_rate(),
                cutoff_estimated: sweep.estimated_cutoff_rate(),
                sweep,
            }
        })
        .collect();
    FaninData { rows }
}

/// The §5 dynamic-toggling experiment: off vs. on vs. ε-greedy dynamic at
/// each rate.
pub fn dynamic_toggle(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> SweepResult {
    let base = RunConfig {
        warmup,
        measure,
        seed,
        nagle: NagleSetting::Dynamic {
            objective: Objective::MinLatency,
        },
        ..RunConfig::new(WorkloadSpec::fig4a(rates[0]), NagleSetting::Off)
    };
    run_sweep(rates, WorkloadSpec::fig4a, &base, true)
}
