//! The paper's figures as runnable experiments.
//!
//! Each function regenerates one figure's data on the simulated testbed
//! and returns a serializable structure the examples and benches print.
//! See EXPERIMENTS.md for the paper-vs-measured comparison.

use batchpolicy::{figure1_model, BatchOutcome, BreakerConfig, Figure1Params, Objective};
use e2e_core::ValidateConfig;
use littles::Nanos;
use simnet::{
    CorruptConfig, DuplicateConfig, FaultConfig, GilbertElliott, JitterConfig, ReorderConfig,
    RestartSchedule, WindowSchedule,
};

use crate::failover::{
    run_failover_point, FailoverArm, FailoverPointResult, FailoverRunConfig, FailoverScenario,
};
use crate::runner::{run_point, NagleSetting, Overrides, PointResult, RunConfig};
use crate::shard::{run_shard_point, ShardPointResult, ShardRunConfig, ShardSetting};
use crate::grid::{default_threads, run_grid};
use crate::sweep::{run_sweep, SweepResult};
use crate::workload::WorkloadSpec;
use crate::cost::CostProfile;

/// The paper's 500 µs latency SLO.
pub const PAPER_SLO: Nanos = Nanos::from_micros(500);

/// Figure 1: the analytical model for c ∈ {1, 3, 5} (and a few more).
pub fn figure1() -> Vec<BatchOutcome> {
    (0..=6)
        .map(|c| figure1_model(Figure1Params::paper(c as f64)))
        .collect()
}

/// One cell of Figure 2: a fixed-load run on one client platform with one
/// Nagle setting.
#[derive(Debug, Clone)]
pub struct Figure2Cell {
    /// Human-readable platform label.
    pub platform: String,
    /// Whether Nagle was on.
    pub nagle_on: bool,
    /// The run's results.
    pub result: PointResult,
}

/// Figure 2: bare-metal vs. VM client at a fixed 20 kRPS.
#[derive(Debug, Clone)]
pub struct Figure2Data {
    /// The four cells: (bare, off), (bare, on), (vm, off), (vm, on).
    pub cells: Vec<Figure2Cell>,
}

impl Figure2Data {
    fn cell(&self, platform: &str, nagle_on: bool) -> &PointResult {
        &self
            .cells
            .iter()
            .find(|c| c.platform == platform && c.nagle_on == nagle_on)
            .expect("cell exists")
            .result
    }

    /// (a) Client CPU: VM vs. bare metal (no-Nagle runs).
    pub fn client_cpu_ratio(&self) -> f64 {
        let total = |r: &PointResult| r.client_cpu.app + r.client_cpu.softirq;
        total(self.cell("vm", false)) / total(self.cell("bare", false))
    }

    /// (b) Server CPU: VM vs. bare metal (should be ≈ 1).
    pub fn server_cpu_ratio(&self) -> f64 {
        let total = |r: &PointResult| r.server_cpu.app + r.server_cpu.softirq;
        total(self.cell("vm", false)) / total(self.cell("bare", false))
    }

    /// (c) Does Nagle help (lower measured latency) on each platform?
    pub fn nagle_helps(&self, platform: &str) -> bool {
        let on = self.cell(platform, true).measured_mean;
        let off = self.cell(platform, false).measured_mean;
        match (on, off) {
            (Some(on), Some(off)) => on < off,
            _ => false,
        }
    }
}

/// Runs Figure 2: the same fixed-rate workload with the client on "bare
/// metal" and "in a VM" (application CPU multiplier), Nagle on and off.
pub fn figure2(rate_rps: f64, warmup: Nanos, measure: Nanos, seed: u64) -> Figure2Data {
    let mut cells = Vec::new();
    for (platform, profile) in [
        ("bare", CostProfile::fig2_bare()),
        ("vm", CostProfile::vm_client()),
    ] {
        for nagle_on in [false, true] {
            let cfg = RunConfig {
                workload: WorkloadSpec::fig2(rate_rps, 4096),
                profile,
                nagle: if nagle_on {
                    NagleSetting::On
                } else {
                    NagleSetting::Off
                },
                use_hints: true,
                warmup,
                measure,
                seed,
                num_clients: 1,
                overrides: crate::runner::Overrides::default(),
                fault: simnet::FaultConfig::default(),
                staleness_bound: None,
                breaker: None,
                validate: None,
            };
            cells.push(Figure2Cell {
                platform: platform.to_string(),
                nagle_on,
                result: run_point(&cfg),
            });
        }
    }
    Figure2Data { cells }
}

/// Figure 4 data: the sweep plus the derived headline quantities.
#[derive(Debug, Clone)]
pub struct Figure4Data {
    /// Which variant ("4a" or "4b").
    pub variant: String,
    /// The full sweep.
    pub sweep: SweepResult,
    /// The SLO used.
    pub slo: Nanos,
    /// Highest SLO-compliant rate with Nagle off.
    pub sustainable_off: Option<f64>,
    /// Highest SLO-compliant rate with Nagle on.
    pub sustainable_on: Option<f64>,
    /// Range-extension factor (paper 4a: ≈ 1.93×).
    pub extension_factor: Option<f64>,
    /// Measured cutoff rate (where Nagle starts winning).
    pub cutoff_measured: Option<f64>,
    /// Byte-estimate cutoff rate (4a: coincides; 4b: does not).
    pub cutoff_estimated: Option<f64>,
}

fn figure4(
    variant: &str,
    rates: &[f64],
    spec_at: impl Fn(f64) -> WorkloadSpec + Sync,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> Figure4Data {
    let base = RunConfig {
        warmup,
        measure,
        seed,
        ..RunConfig::new(spec_at(rates[0]), NagleSetting::Off)
    };
    let sweep = run_sweep(rates, spec_at, &base, false);
    let sustainable_off = sweep.sustainable_rate(PAPER_SLO, |r| &r.off);
    let sustainable_on = sweep.sustainable_rate(PAPER_SLO, |r| &r.on);
    let extension_factor = match (sustainable_off, sustainable_on) {
        (Some(off), Some(on)) if off > 0.0 => Some(on / off),
        _ => None,
    };
    Figure4Data {
        variant: variant.to_string(),
        cutoff_measured: sweep.cutoff_rate(),
        cutoff_estimated: sweep.estimated_cutoff_rate(),
        sweep,
        slo: PAPER_SLO,
        sustainable_off,
        sustainable_on,
        extension_factor,
    }
}

/// The default rate grid for Figure 4 sweeps (requests/second), spanning
/// from well below the measured cutoff (~75 kRPS) past both knees
/// (no-Nagle ≈ 88 kRPS, Nagle ≈ 115 kRPS with the calibrated profile).
pub fn default_rates() -> Vec<f64> {
    vec![
        5_000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0, 60_000.0, 65_000.0, 70_000.0,
        75_000.0, 80_000.0, 85_000.0, 88_000.0, 95_000.0, 105_000.0, 115_000.0,
    ]
}

/// Figure 4a: SET-only, 16 B keys, 16 KiB values.
pub fn figure4a(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> Figure4Data {
    figure4("4a", rates, WorkloadSpec::fig4a, warmup, measure, seed)
}

/// Figure 4b: SET:GET = 95:5 — the byte-unit estimate degrades.
pub fn figure4b(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> Figure4Data {
    figure4("4b", rates, WorkloadSpec::fig4b, warmup, measure, seed)
}

/// One fan-in row: the same aggregate load split across `num_clients`
/// connections.
#[derive(Debug, Clone)]
pub struct FaninRow {
    /// Concurrent client connections.
    pub num_clients: usize,
    /// The load sweep at this fan-in.
    pub sweep: SweepResult,
    /// Measured cutoff rate (where Nagle starts winning) at this fan-in.
    pub cutoff_measured: Option<f64>,
    /// Byte-estimate cutoff rate at this fan-in.
    pub cutoff_estimated: Option<f64>,
}

/// The fan-in experiment: how the Nagle cutoff moves as one aggregate
/// load spreads over more connections.
#[derive(Debug, Clone)]
pub struct FaninData {
    /// One row per fan-in width, ascending.
    pub rows: Vec<FaninRow>,
}

impl FaninData {
    /// The measured cutoff at a given fan-in width.
    pub fn cutoff_for(&self, num_clients: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.num_clients == num_clients)
            .and_then(|r| r.cutoff_measured)
    }
}

/// Runs the fan-in experiment: for each `N ∈ ns`, sweep the *aggregate*
/// offered rate over `rates` with the load split across N connections
/// into one shared server.
///
/// Per-connection rates shrink as N grows, so each connection's Nagle
/// hold waits longer for enough bytes (or the ACK) to flush — the
/// batching-on latency penalty grows with N while the no-Nagle curve
/// stays nearly N-independent until the shared server CPU collapses.
/// The cutoff where batching starts winning therefore moves *right*
/// (to higher aggregate rates) as N grows, converging on the collapse
/// point itself; the throughput-weighted aggregate estimate identifies
/// it at every width.
pub fn fanin(
    ns: &[usize],
    rates: &[f64],
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> FaninData {
    let rows = ns
        .iter()
        .map(|&n| {
            let base = RunConfig {
                warmup,
                measure,
                seed,
                num_clients: n,
                ..RunConfig::new(WorkloadSpec::fig4a(rates[0]), NagleSetting::Off)
            };
            let sweep = run_sweep(rates, WorkloadSpec::fig4a, &base, false);
            FaninRow {
                num_clients: n,
                cutoff_measured: sweep.cutoff_rate(),
                cutoff_estimated: sweep.estimated_cutoff_rate(),
                sweep,
            }
        })
        .collect();
    FaninData { rows }
}

/// The §5 dynamic-toggling experiment: off vs. on vs. ε-greedy dynamic at
/// each rate.
pub fn dynamic_toggle(rates: &[f64], warmup: Nanos, measure: Nanos, seed: u64) -> SweepResult {
    let base = RunConfig {
        warmup,
        measure,
        seed,
        nagle: NagleSetting::Dynamic {
            objective: Objective::MinLatency,
        },
        ..RunConfig::new(WorkloadSpec::fig4a(rates[0]), NagleSetting::Off)
    };
    run_sweep(rates, WorkloadSpec::fig4a, &base, true)
}

/// Staleness bound used by the adaptive chaos profile: a peer snapshot
/// older than this stops being trusted and the estimator falls back to
/// local-only estimation with zero confidence. Four exchange intervals
/// (500 µs each) of headroom keeps healthy runs comfortably fresh while a
/// blackout or server stall trips the fallback within two policy ticks.
pub const CHAOS_STALENESS_BOUND: Nanos = Nanos::from_millis(2);

/// The stated degradation bound the adaptive policy must satisfy in every
/// chaos cell: P99 within `CHAOS_BOUND_FACTOR × oracle +
/// CHAOS_BOUND_SLACK`, where the oracle is the better static mode for
/// that cell. The factor absorbs ε-greedy exploration (a few percent of
/// decisions deliberately sample the worse mode) plus run-to-run
/// divergence in which packets a fault episode hits; the slack keeps
/// cells whose oracle P99 is tiny from gating on scheduler noise.
pub const CHAOS_BOUND_FACTOR: f64 = 3.0;
/// Additive slack for the chaos degradation bound.
pub const CHAOS_BOUND_SLACK: Nanos = Nanos::from_micros(300);

/// The fault classes the chaos experiment sweeps. Each maps one intensity
/// knob in `(0, 1]` onto a single-dimension [`FaultConfig`], so a cell
/// isolates the policy stack's response to one impairment at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosClass {
    /// Gilbert–Elliott bursty loss, up to a 4% stationary rate in bursts
    /// of ~8 packets.
    Loss,
    /// Bounded reordering: up to 30% of packets held back ≤ 150 µs.
    Reorder,
    /// Packet duplication, up to 10% of packets delivered twice.
    Duplicate,
    /// Uniform per-packet delay jitter, up to 100 µs.
    Jitter,
    /// Periodic link blackouts (switch flap): up to 2 ms dark every 25 ms.
    Blackout,
    /// Periodic server application-thread stalls (GC pause): up to 2 ms
    /// every 25 ms.
    ServerStall,
}

impl ChaosClass {
    /// Every class, in sweep order.
    pub const ALL: [ChaosClass; 6] = [
        ChaosClass::Loss,
        ChaosClass::Reorder,
        ChaosClass::Duplicate,
        ChaosClass::Jitter,
        ChaosClass::Blackout,
        ChaosClass::ServerStall,
    ];

    /// Stable label used in tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosClass::Loss => "loss",
            ChaosClass::Reorder => "reorder",
            ChaosClass::Duplicate => "duplicate",
            ChaosClass::Jitter => "jitter",
            ChaosClass::Blackout => "blackout",
            ChaosClass::ServerStall => "server_stall",
        }
    }

    /// The fault configuration for this class at `intensity ∈ (0, 1]`.
    ///
    /// All faults start at 10 ms — past the handshake, inside any
    /// realistic warmup — and scheduled windows repeat every 25 ms so
    /// even a short measurement window sees several episodes.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `(0, 1]`.
    pub fn fault_at(&self, intensity: f64) -> FaultConfig {
        assert!(
            intensity > 0.0 && intensity <= 1.0,
            "chaos intensity must be in (0, 1], got {intensity}"
        );
        let scaled_us = |max_us: f64| Nanos::from_nanos((1_000.0 * max_us * intensity) as u64);
        let start = Nanos::from_millis(10);
        let window = |duration: Nanos| WindowSchedule {
            first_at: start,
            period: Nanos::from_millis(25),
            duration,
        };
        let mut fault = FaultConfig {
            start_at: start,
            ..FaultConfig::default()
        };
        match self {
            ChaosClass::Loss => {
                // Bursty, but not a total outage inside a burst: dropping
                // only half the packets in the bad state leaves fast
                // retransmissions a fighting chance, which is the regime
                // where the policies differ rather than everything
                // reducing to RTO waits. Stationary loss rate is
                // π_bad · loss_bad = 4% · intensity.
                let pi_bad = 2.0 * 0.04 * intensity;
                fault.loss = Some(GilbertElliott {
                    p_bad_to_good: 1.0 / 8.0,
                    p_good_to_bad: pi_bad / (1.0 - pi_bad) / 8.0,
                    loss_good: 0.0,
                    loss_bad: 0.5,
                });
            }
            ChaosClass::Reorder => {
                fault.reorder = Some(ReorderConfig {
                    probability: 0.3 * intensity,
                    max_extra: Nanos::from_micros(150),
                });
            }
            ChaosClass::Duplicate => {
                fault.duplicate = Some(DuplicateConfig {
                    probability: 0.10 * intensity,
                });
            }
            ChaosClass::Jitter => {
                fault.jitter = Some(JitterConfig {
                    max: scaled_us(100.0),
                });
            }
            ChaosClass::Blackout => {
                fault.blackout = Some(window(scaled_us(2_000.0)));
            }
            ChaosClass::ServerStall => {
                fault.server_stall = Some(window(scaled_us(2_000.0)));
            }
        }
        fault
    }
}

/// One chaos cell: a fault class at one intensity and fan-in width, run
/// under both static baselines and the adaptive (breaker-guarded,
/// staleness-aware) dynamic policy.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// The injected fault class.
    pub class: ChaosClass,
    /// The class intensity knob in `(0, 1]`.
    pub intensity: f64,
    /// Concurrent client connections.
    pub num_clients: usize,
    /// Static Nagle-off baseline under this fault.
    pub off: PointResult,
    /// Static Nagle-on baseline under this fault.
    pub on: PointResult,
    /// Adaptive policy (Dynamic + staleness bound + circuit breaker).
    pub adaptive: PointResult,
}

impl ChaosCell {
    /// The static oracle: the better (lower) of the two static P99s —
    /// what an omniscient operator would have picked for this cell.
    pub fn oracle_p99(&self) -> Option<Nanos> {
        match (self.off.measured_p99, self.on.measured_p99) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Adaptive-vs-oracle P99 ratio (> 1 means the adaptive policy was
    /// worse than the best static choice).
    pub fn regression(&self) -> Option<f64> {
        let oracle = self.oracle_p99()?;
        let adaptive = self.adaptive.measured_p99?;
        Some(adaptive.as_nanos() as f64 / oracle.as_nanos().max(1) as f64)
    }

    /// True if the adaptive P99 stays within `factor × oracle + slack`.
    /// The additive slack absorbs oracle P99s so small that a fixed ratio
    /// would gate on scheduling noise.
    pub fn within_bound(&self, factor: f64, slack: Nanos) -> bool {
        match (self.oracle_p99(), self.adaptive.measured_p99) {
            (Some(oracle), Some(adaptive)) => {
                let bound = Nanos::from_nanos((oracle.as_nanos() as f64 * factor) as u64) + slack;
                adaptive <= bound
            }
            // A cell where either side produced no samples is a failed
            // run, not a pass.
            _ => false,
        }
    }
}

/// The chaos experiment's full grid.
#[derive(Debug, Clone)]
pub struct ChaosData {
    /// One cell per (fan-in, class, intensity), in sweep order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosData {
    /// The worst adaptive-vs-oracle P99 ratio across the grid.
    pub fn worst_regression(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.regression())
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// The degradation bound the joint adaptive control plane must satisfy
/// in every knob-grid cell: P99 within `KNOBS_BOUND_FACTOR ×
/// best-static-corner + KNOBS_BOUND_SLACK`. Much tighter than the chaos
/// bound — the grid is fault-free, so the only adaptive overheads are
/// ε-greedy exploration and the knobs' convergence transient.
pub const KNOBS_BOUND_FACTOR: f64 = 1.1;
/// Additive slack for the knob-grid degradation bound.
pub const KNOBS_BOUND_SLACK: Nanos = Nanos::from_micros(100);

/// Delayed-ACK timeout used uniformly across every knob-grid arm. The
/// Linux-default 40 ms would turn each Nagle/delayed-ACK interaction
/// stall into an outage at simulated timescales; 500 µs keeps the stall
/// real (it dominates the affected corners' P99) but lets every arm
/// finish inside the measure window.
pub const KNOBS_DELACK_TIMEOUT: Nanos = Nanos::from_micros(500);

/// One static corner of the knob cube, labeled.
#[derive(Debug, Clone)]
pub struct KnobCorner {
    /// Corner coordinates: Nagle, delayed ACKs, fixed cork limit.
    pub nagle: bool,
    /// Delayed ACKs enabled.
    pub delayed_ack: bool,
    /// Two-MSS cork limit enabled.
    pub cork: bool,
    /// The run's results.
    pub result: PointResult,
}

impl KnobCorner {
    /// Stable label, e.g. `"nagle+delack-cork"`.
    pub fn label(&self) -> String {
        let sign = |b: bool| if b { '+' } else { '-' };
        format!(
            "{}nagle{}delack{}cork",
            sign(self.nagle),
            sign(self.delayed_ack),
            sign(self.cork)
        )
    }
}

/// One cell of the knob grid: a (client cost c, fan-in N) point run
/// under all eight static knob corners, the Nagle-only adaptive plane
/// (the paper's single-knob policy), and the joint adaptive plane
/// driving all three knobs.
#[derive(Debug, Clone)]
pub struct KnobsCell {
    /// The client per-response app cost `c` (Figure 1's client cost).
    pub client_cost: Nanos,
    /// Concurrent client connections.
    pub num_clients: usize,
    /// The eight static corners, in (nagle, delack, cork) binary order.
    pub corners: Vec<KnobCorner>,
    /// The Nagle-only adaptive plane (today's single-knob behaviour).
    pub nagle_only: PointResult,
    /// The joint adaptive plane (Nagle + delayed-ACK + cork).
    pub joint: PointResult,
}

impl KnobsCell {
    /// The best (lowest) static-corner P99 — what an omniscient operator
    /// sweeping all eight corners would have picked.
    pub fn best_corner_p99(&self) -> Option<Nanos> {
        self.corners
            .iter()
            .filter_map(|c| c.result.measured_p99)
            .min()
    }

    /// The label of the best static corner.
    pub fn best_corner_label(&self) -> Option<String> {
        self.corners
            .iter()
            .filter(|c| c.result.measured_p99.is_some())
            .min_by_key(|c| c.result.measured_p99)
            .map(|c| c.label())
    }

    /// Joint-vs-best-corner P99 ratio (> 1 means the joint plane was
    /// worse than the best static corner).
    pub fn regression(&self) -> Option<f64> {
        let best = self.best_corner_p99()?;
        let joint = self.joint.measured_p99?;
        Some(joint.as_nanos() as f64 / best.as_nanos().max(1) as f64)
    }

    /// True if the joint plane's P99 stays within `factor × best-corner +
    /// slack`.
    pub fn within_bound(&self, factor: f64, slack: Nanos) -> bool {
        match (self.best_corner_p99(), self.joint.measured_p99) {
            (Some(best), Some(joint)) => {
                let bound = Nanos::from_nanos((best.as_nanos() as f64 * factor) as u64) + slack;
                joint <= bound
            }
            // A cell where either side produced no samples is a failed
            // run, not a pass.
            _ => false,
        }
    }

    /// True if the joint plane's P99 strictly beats the Nagle-only
    /// adaptive plane's — the multi-knob payoff.
    pub fn joint_beats_nagle_only(&self) -> bool {
        match (self.joint.measured_p99, self.nagle_only.measured_p99) {
            (Some(joint), Some(single)) => joint < single,
            _ => false,
        }
    }
}

/// The knob grid experiment's full result.
#[derive(Debug, Clone)]
pub struct KnobsData {
    /// One cell per (client cost, fan-in), in sweep order.
    pub cells: Vec<KnobsCell>,
}

impl KnobsData {
    /// The worst joint-vs-best-corner P99 ratio across the grid.
    pub fn worst_regression(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.regression())
            .max_by(|a, b| a.total_cmp(b))
    }

    /// The cell at the grid's highest client cost and fan-in — where the
    /// Nagle/delayed-ACK interaction bites hardest and the multi-knob
    /// plane must strictly beat the single-knob one.
    pub fn high_cell(&self) -> Option<&KnobsCell> {
        self.cells.iter().max_by_key(|c| (c.client_cost, c.num_clients))
    }
}

/// Runs the knob grid: for each client per-response cost `c` in `costs`
/// and each fan-in width in `ns`, one cell of ten runs (eight static
/// corners, Nagle-only plane, joint plane) at the same aggregate
/// `rate_rps`.
///
/// Every arm shares the same uniform delayed-ACK timeout
/// ([`KNOBS_DELACK_TIMEOUT`]) so the corners and the adaptive planes
/// pay the same stall when delayed ACKs interact with Nagle.
pub fn knobs(
    costs: &[Nanos],
    ns: &[usize],
    rate_rps: f64,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> KnobsData {
    // Cells (one per cost x width) run in parallel; the ten runs inside a
    // cell stay serial. Index-ordered merge keeps the output identical to
    // the serial nested loop.
    let mut specs = Vec::new();
    for &cost in costs {
        for &n in ns {
            specs.push((cost, n));
        }
    }
    let cells = run_grid(specs.len(), default_threads(), |i| {
        let (cost, n) = specs[i];
        let mut profile = CostProfile::calibrated();
        profile.app.client_response_base = cost;
        {
            let base = RunConfig {
                profile,
                warmup,
                measure,
                seed,
                num_clients: n,
                overrides: Overrides {
                    delack_timeout: Some(KNOBS_DELACK_TIMEOUT),
                    ..Overrides::default()
                },
                ..RunConfig::new(WorkloadSpec::fig4a(rate_rps), NagleSetting::Off)
            };
            let corners = [false, true]
                .iter()
                .flat_map(|&nagle| {
                    [false, true].iter().flat_map(move |&delayed_ack| {
                        [false, true].iter().map(move |&cork| (nagle, delayed_ack, cork))
                    })
                })
                .map(|(nagle, delayed_ack, cork)| KnobCorner {
                    nagle,
                    delayed_ack,
                    cork,
                    result: run_point(&RunConfig {
                        nagle: NagleSetting::Corner {
                            nagle,
                            delayed_ack,
                            cork,
                        },
                        ..base
                    }),
                })
                .collect();
            let nagle_only = run_point(&RunConfig {
                nagle: NagleSetting::Plane {
                    objective: Objective::MinLatency,
                    delack: false,
                    cork: false,
                },
                ..base
            });
            let joint = run_point(&RunConfig {
                nagle: NagleSetting::Plane {
                    objective: Objective::MinLatency,
                    delack: true,
                    cork: true,
                },
                ..base
            });
            KnobsCell {
                client_cost: cost,
                num_clients: n,
                corners,
                nagle_only,
                joint,
            }
        }
    });
    KnobsData { cells }
}

/// Runs the chaos grid: for each fan-in width in `ns`, each fault class,
/// and each intensity, one cell of three runs (static off, static on,
/// adaptive) at the same aggregate `rate_rps`.
///
/// The adaptive run is the graceful-degradation configuration under test:
/// ε-greedy dynamic toggling behind a [`CircuitBreaker`]
/// (batchpolicy::CircuitBreaker) with the default trip/backoff profile,
/// with estimator confidence driven by [`CHAOS_STALENESS_BOUND`].
pub fn chaos(
    classes: &[ChaosClass],
    intensities: &[f64],
    ns: &[usize],
    rate_rps: f64,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> ChaosData {
    // Enumerate the grid up front, then run cells in parallel; the merge
    // is by cell index, so the output order (and every byte in it) matches
    // the serial triple loop this replaces.
    let mut specs = Vec::new();
    for &n in ns {
        for &class in classes {
            for &intensity in intensities {
                specs.push((n, class, intensity));
            }
        }
    }
    let cells = run_grid(specs.len(), default_threads(), |i| {
        let (n, class, intensity) = specs[i];
        let base = RunConfig {
            warmup,
            measure,
            seed,
            num_clients: n,
            fault: class.fault_at(intensity),
            overrides: Overrides {
                // The Linux-default 200 ms RTO floor exceeds the
                // whole measure window, and exponential backoff
                // toward the 60 s cap can park a lossy connection
                // past it entirely; clamp both (identically in
                // all three arms) so loss episodes recover at
                // simulation timescales.
                min_rto: Some(Nanos::from_millis(5)),
                max_rto: Some(Nanos::from_millis(40)),
                ..Overrides::default()
            },
            ..RunConfig::new(WorkloadSpec::fig4a(rate_rps), NagleSetting::Off)
        };
        let off = run_point(&base);
        let on = run_point(&RunConfig {
            nagle: NagleSetting::On,
            ..base
        });
        let adaptive = run_point(&RunConfig {
            nagle: NagleSetting::Dynamic {
                objective: Objective::MinLatency,
            },
            staleness_bound: Some(CHAOS_STALENESS_BOUND),
            breaker: Some(BreakerConfig::default()),
            ..base
        });
        ChaosCell {
            class,
            intensity,
            num_clients: n,
            off,
            on,
            adaptive,
        }
    });
    ChaosData { cells }
}

/// The adversarial fault classes the adversary experiment sweeps: unlike
/// the chaos classes, which impair *delivery*, these impair the
/// *metadata* itself — the exchange payload is garbled, or the peer that
/// produced it restarts and its counters start over from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryClass {
    /// Deterministic bit flips on the in-flight exchange option: one
    /// random (field, bit) target per corrupted segment, up to 25% of
    /// exchange-carrying segments at full intensity.
    Corrupt,
    /// Periodic endpoint restarts: a client process dies mid-run, every
    /// socket's counters reset, and it reconnects with a fresh epoch —
    /// every 50 ms at full intensity.
    Restart,
}

impl AdversaryClass {
    /// Every class, in sweep order.
    pub const ALL: [AdversaryClass; 2] = [AdversaryClass::Corrupt, AdversaryClass::Restart];

    /// Stable label used in tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryClass::Corrupt => "corrupt",
            AdversaryClass::Restart => "restart",
        }
    }

    /// The fault configuration for this class at `intensity ∈ (0, 1]`.
    ///
    /// Corruption starts at 10 ms (past the handshake); restarts first
    /// fire at 25 ms and then repeat with a period of `50 ms / intensity`,
    /// so even the smoke window sees several full die/reconnect/resync
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `(0, 1]`.
    pub fn fault_at(&self, intensity: f64) -> FaultConfig {
        assert!(
            intensity > 0.0 && intensity <= 1.0,
            "adversary intensity must be in (0, 1], got {intensity}"
        );
        let mut fault = FaultConfig {
            start_at: Nanos::from_millis(10),
            ..FaultConfig::default()
        };
        match self {
            AdversaryClass::Corrupt => {
                fault.corrupt = Some(CorruptConfig {
                    probability: 0.25 * intensity,
                });
            }
            AdversaryClass::Restart => {
                fault.restart = Some(RestartSchedule {
                    first_at: Nanos::from_millis(25),
                    period: Nanos::from_nanos((50_000_000.0 / intensity) as u64),
                });
            }
        }
        fault
    }
}

/// One adversary cell: an adversarial fault class at one intensity and
/// fan-in width, run under both static baselines plus two otherwise
/// identical adaptive arms that differ only in whether incoming exchanges
/// are validated. The guarded arm is the hardened configuration under
/// test; the exposed arm is the ablation showing validation is
/// load-bearing.
#[derive(Debug, Clone)]
pub struct AdversaryCell {
    /// The injected fault class.
    pub class: AdversaryClass,
    /// The class intensity knob in `(0, 1]`.
    pub intensity: f64,
    /// Concurrent client connections.
    pub num_clients: usize,
    /// Static Nagle-off baseline under this fault.
    pub off: PointResult,
    /// Static Nagle-on baseline under this fault.
    pub on: PointResult,
    /// Adaptive policy with peer-state validation (Dynamic + staleness
    /// bound + safe-on circuit breaker + validator).
    pub guarded: PointResult,
    /// The same adaptive policy with validation disabled — garbled or
    /// restart-spanning windows reach the estimator unchecked.
    pub exposed: PointResult,
}

impl AdversaryCell {
    /// The static oracle: the better (lower) of the two static P99s.
    pub fn oracle_p99(&self) -> Option<Nanos> {
        match (self.off.measured_p99, self.on.measured_p99) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn ratio_to_oracle(&self, arm: &PointResult) -> Option<f64> {
        let oracle = self.oracle_p99()?;
        let p99 = arm.measured_p99?;
        Some(p99.as_nanos() as f64 / oracle.as_nanos().max(1) as f64)
    }

    /// Guarded-vs-oracle P99 ratio (> 1 means the guarded policy was
    /// worse than the best static choice).
    pub fn regression(&self) -> Option<f64> {
        self.ratio_to_oracle(&self.guarded)
    }

    /// Exposed-vs-oracle P99 ratio — how badly unvalidated metadata
    /// poisons the same policy stack.
    pub fn exposed_regression(&self) -> Option<f64> {
        self.ratio_to_oracle(&self.exposed)
    }

    fn arm_within_bound(&self, arm: &PointResult, factor: f64, slack: Nanos) -> bool {
        match (self.oracle_p99(), arm.measured_p99) {
            (Some(oracle), Some(p99)) => {
                let bound = Nanos::from_nanos((oracle.as_nanos() as f64 * factor) as u64) + slack;
                p99 <= bound
            }
            // A cell where either side produced no samples is a failed
            // run, not a pass.
            _ => false,
        }
    }

    /// True if the guarded P99 stays within `factor × oracle + slack` —
    /// the same degradation bound the chaos grid enforces.
    pub fn within_bound(&self, factor: f64, slack: Nanos) -> bool {
        self.arm_within_bound(&self.guarded, factor, slack)
    }

    /// True if the *exposed* arm stays within the bound. The experiment's
    /// point is that at least one cell fails this: without validation the
    /// same policy stack degrades past the bound.
    pub fn exposed_within_bound(&self, factor: f64, slack: Nanos) -> bool {
        self.arm_within_bound(&self.exposed, factor, slack)
    }
}

/// The adversary experiment's full grid.
#[derive(Debug, Clone)]
pub struct AdversaryData {
    /// One cell per (fan-in, class, intensity), in sweep order.
    pub cells: Vec<AdversaryCell>,
}

impl AdversaryData {
    /// The worst guarded-vs-oracle P99 ratio across the grid.
    pub fn worst_regression(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter_map(|c| c.regression())
            .max_by(|a, b| a.total_cmp(b))
    }

    /// True if at least one exposed arm broke the degradation bound —
    /// i.e. the validator is demonstrably load-bearing on this grid, not
    /// a no-op rubber stamp.
    pub fn poisoning_demonstrated(&self, factor: f64, slack: Nanos) -> bool {
        self.cells
            .iter()
            .any(|c| !c.exposed_within_bound(factor, slack))
    }
}

/// The breaker profile for the adversary's adaptive arms — deliberately
/// more pessimistic than [`BreakerConfig::default`], because the threat
/// model differs. Chaos faults impair *delivery*: staleness collapses
/// confidence for the whole outage, so a short backoff and quick restore
/// suffice. Adversarial faults impair the *metadata*: a garbled window
/// small enough to pass plausibility checks carries full confidence, so
/// the only trustworthy signal is the validator's rejection stream — and
/// any rejection means the peer state cannot currently be trusted at
/// all. Hence: `min_confidence` 0.75 (a single rejected exchange halves
/// confidence to 0.5 and already counts), `trip_after` 1 (first suspect
/// tick fails static-safe), a long escalating backoff with a slow
/// restore (a still-corrupted probe re-opens and doubles the wait), and
/// `safe_on` true because at the experiment's operating point — past the
/// no-Nagle knee — the safe static mode is batching *on* (the paper's
/// range-extension argument), not the Redis default.
pub fn adversary_breaker() -> BreakerConfig {
    BreakerConfig {
        min_confidence: 0.75,
        trip_after: 1,
        safe_on: true,
        initial_backoff: Nanos::from_millis(50),
        max_backoff: Nanos::from_secs(2),
        restore_after: 8,
    }
}

/// Runs the adversary grid: for each fan-in width in `ns`, each
/// adversarial fault class, and each intensity, one cell of four runs
/// (static off, static on, guarded adaptive, exposed adaptive) at the
/// same aggregate `rate_rps`.
///
/// The guarded and exposed arms share every knob — objective, seeds,
/// staleness bound, breaker — and differ only in `validate`, so any
/// latency gap between them is attributable to peer-state validation.
pub fn adversary(
    classes: &[AdversaryClass],
    intensities: &[f64],
    ns: &[usize],
    rate_rps: f64,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> AdversaryData {
    // Same parallel-cells/serial-merge shape as the chaos grid.
    let mut specs = Vec::new();
    for &n in ns {
        for &class in classes {
            for &intensity in intensities {
                specs.push((n, class, intensity));
            }
        }
    }
    let cells = run_grid(specs.len(), default_threads(), |i| {
        let (n, class, intensity) = specs[i];
        let base = RunConfig {
            warmup,
            measure,
            seed,
            num_clients: n,
            fault: class.fault_at(intensity),
            // The validator rides along in the static arms too:
            // it cannot change their latency (no policy consumes
            // the estimates) but its counters prove the faults
            // actually reached the metadata path.
            validate: Some(ValidateConfig::default()),
            overrides: Overrides {
                // Same RTO clamps as the chaos grid, identical in
                // all four arms, so restart-induced loss episodes
                // recover at simulation timescales.
                min_rto: Some(Nanos::from_millis(5)),
                max_rto: Some(Nanos::from_millis(40)),
                ..Overrides::default()
            },
            ..RunConfig::new(WorkloadSpec::fig4a(rate_rps), NagleSetting::Off)
        };
        let off = run_point(&base);
        let on = run_point(&RunConfig {
            nagle: NagleSetting::On,
            ..base
        });
        let guarded_cfg = RunConfig {
            nagle: NagleSetting::Dynamic {
                objective: Objective::MinLatency,
            },
            staleness_bound: Some(CHAOS_STALENESS_BOUND),
            breaker: Some(adversary_breaker()),
            ..base
        };
        let guarded = run_point(&guarded_cfg);
        let exposed = run_point(&RunConfig {
            validate: None,
            ..guarded_cfg
        });
        AdversaryCell {
            class,
            intensity,
            num_clients: n,
            off,
            on,
            guarded,
            exposed,
        }
    });
    AdversaryData { cells }
}

/// Minimum fraction of measurement windows in which the service-level
/// estimates must rank the hot shard's composed delay highest, checked
/// on the *unadapted* (`TCP_NODELAY`-pinned) run at the saturated top
/// rate. The diagnostic claim lives on that arm deliberately: the
/// adaptive planes consume the very signal being measured — once the
/// hot upstream flips to batching, its delay drops back into the pack.
pub const SHARD_HOT_RANK_MIN: f64 = 0.9;
/// Degradation bound for every shard-grid cell: adaptive P99 within
/// `SHARD_BOUND_FACTOR × best-static-corner + SHARD_BOUND_SLACK`. Looser
/// than the knob-grid bound because at unsaturated rates the per-shard
/// planes pay exploration excursions on upstreams where both corners are
/// already cheap; the headline claim (strictly beating the best corner)
/// is asserted separately on the saturated cell.
pub const SHARD_BOUND_FACTOR: f64 = 1.5;
/// Additive slack for the shard-grid degradation bound.
pub const SHARD_BOUND_SLACK: Nanos = Nanos::from_micros(60);

/// One cell of the sharded-proxy grid: both static upstream corners and
/// the per-shard adaptive planes, at one aggregate rate.
#[derive(Debug, Clone)]
pub struct ShardCell {
    /// Aggregate offered load (requests/second).
    pub rate_rps: f64,
    /// Upstreams pinned `TCP_NODELAY`.
    pub off: ShardPointResult,
    /// Upstreams pinned Nagle-on.
    pub on: ShardPointResult,
    /// Per-shard adaptive planes at the proxy.
    pub adaptive: ShardPointResult,
}

impl ShardCell {
    /// The best (lowest) static-corner P99 — the global pin an operator
    /// sweeping both corners would have picked for the whole fleet.
    pub fn best_corner_p99(&self) -> Option<Nanos> {
        [self.off.measured_p99, self.on.measured_p99]
            .into_iter()
            .flatten()
            .min()
    }

    /// Adaptive-vs-best-corner P99 ratio (< 1 means the per-shard planes
    /// beat every global static choice).
    pub fn regression(&self) -> Option<f64> {
        let best = self.best_corner_p99()?;
        let adaptive = self.adaptive.measured_p99?;
        Some(adaptive.as_nanos() as f64 / best.as_nanos().max(1) as f64)
    }

    /// True if the adaptive P99 stays within `factor × best-corner +
    /// slack`.
    pub fn within_bound(&self, factor: f64, slack: Nanos) -> bool {
        match (self.best_corner_p99(), self.adaptive.measured_p99) {
            (Some(best), Some(adaptive)) => {
                let bound = Nanos::from_nanos((best.as_nanos() as f64 * factor) as u64) + slack;
                adaptive <= bound
            }
            _ => false,
        }
    }
}

/// The sharded-proxy experiment's full result.
#[derive(Debug, Clone)]
pub struct ShardData {
    /// One cell per aggregate rate, in sweep order.
    pub cells: Vec<ShardCell>,
}

/// Runs the sharded-proxy grid: for each aggregate rate, one skewed-load
/// cell of three two-tier runs — upstreams pinned off, pinned on, and
/// per-shard adaptive. The skew concentrates `hot_fraction` of the
/// traffic on one shard, so a *global* static pin is wrong for someone:
/// the hot upstream wants request batching (amortizing the hot shard's
/// per-delivery receive work), the cold ones want immediacy. The cell
/// exposes whether the composed per-shard estimates (a) rank the hot
/// shard first and (b) let the per-shard planes beat both global pins.
pub fn shard(
    rates: &[f64],
    num_clients: usize,
    num_shards: usize,
    hot_fraction: f64,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> ShardData {
    let specs: Vec<f64> = rates.to_vec();
    let cells = run_grid(specs.len(), default_threads(), |i| {
        let rate = specs[i];
        let base = ShardRunConfig {
            num_clients,
            num_shards,
            hot_fraction,
            warmup,
            measure,
            seed,
            ..ShardRunConfig::new(
                WorkloadSpec::shard(rate),
                ShardSetting::Corner { nagle: false },
            )
        };
        let off = run_shard_point(&base);
        let on = run_shard_point(&ShardRunConfig {
            setting: ShardSetting::Corner { nagle: true },
            ..base
        });
        let adaptive = run_shard_point(&ShardRunConfig {
            setting: ShardSetting::Adaptive {
                objective: Objective::MinLatency,
            },
            ..base
        });
        ShardCell {
            rate_rps: rate,
            off,
            on,
            adaptive,
        }
    });
    ShardData { cells }
}

/// Degradation bound for the full defense stack in every failover cell:
/// P99 within `FAILOVER_BOUND_FACTOR × never-failed oracle +
/// FAILOVER_BOUND_SLACK`. The slack absorbs the deadline-scan
/// granularity (a hedge can fire at most one proxy tick late).
pub const FAILOVER_BOUND_FACTOR: f64 = 3.0;
/// Additive slack for the full-stack failover bound.
pub const FAILOVER_BOUND_SLACK: Nanos = Nanos::from_micros(300);
/// The naive proxy must exceed this P99 multiple of the oracle in at
/// least one cell — the collapse the defense ladder exists to prevent.
pub const FAILOVER_NAIVE_FACTOR: f64 = 10.0;
/// Goodput floor for the full stack, as a fraction of the oracle's.
pub const FAILOVER_GOODPUT_MIN: f64 = 0.9;

/// One cell of the failover grid: a fault scenario, the never-failed
/// oracle, and the full defense-arm ladder under that fault.
#[derive(Debug, Clone)]
pub struct FailoverCell {
    /// The injected fault.
    pub scenario: FailoverScenario,
    /// The identical configuration with the fault plan disabled.
    pub oracle: FailoverPointResult,
    /// One run per [`FailoverArm`], in `FailoverArm::ALL` order.
    pub arms: Vec<(FailoverArm, FailoverPointResult)>,
}

impl FailoverCell {
    /// The result for one arm.
    pub fn arm(&self, arm: FailoverArm) -> &FailoverPointResult {
        &self
            .arms
            .iter()
            .find(|(a, _)| *a == arm)
            .expect("every arm runs in every cell")
            .1
    }

    /// One arm's P99 as a multiple of the oracle's.
    pub fn p99_ratio(&self, arm: FailoverArm) -> Option<f64> {
        let oracle = self.oracle.measured_p99?;
        let armed = self.arm(arm).measured_p99?;
        Some(armed.as_nanos() as f64 / oracle.as_nanos().max(1) as f64)
    }

    /// True when the full stack holds the cell's acceptance bound: P99
    /// within `factor × oracle + slack` and goodput within
    /// [`FAILOVER_GOODPUT_MIN`] of the oracle's.
    pub fn full_within_bound(&self, factor: f64, slack: Nanos) -> bool {
        let full = self.arm(FailoverArm::Full);
        match (self.oracle.measured_p99, full.measured_p99) {
            (Some(oracle), Some(p99)) => {
                let bound =
                    Nanos::from_nanos((oracle.as_nanos() as f64 * factor) as u64) + slack;
                p99 <= bound && full.achieved_rps >= FAILOVER_GOODPUT_MIN * self.oracle.achieved_rps
            }
            _ => false,
        }
    }

    /// True when the naive proxy's P99 blew past `factor ×` the oracle
    /// (or stopped producing samples at all — total collapse).
    pub fn naive_collapsed(&self, factor: f64) -> bool {
        match self.p99_ratio(FailoverArm::NoDefense) {
            Some(r) => r > factor,
            None => true,
        }
    }
}

/// The failover experiment's full result.
#[derive(Debug, Clone)]
pub struct FailoverData {
    /// One cell per scenario, in [`FailoverScenario::ALL`] order.
    pub cells: Vec<FailoverCell>,
}

/// Runs the failover grid: for each fault scenario (hot-shard crash,
/// cold-shard brownout), the never-failed oracle plus every defense arm
/// — naive, deadlines only, +retries, and the full retry/hedge/breaker
/// stack with ring-successor failover routing. The cells expose the
/// robustness claim: end-to-end estimation is not only a batching signal
/// but the timing source for hedges and the confidence feed for
/// breakers, and with both in place a shard can die mid-run while the
/// client-visible tail stays within a small factor of a healthy tier.
pub fn failover(
    rate: f64,
    num_clients: usize,
    num_shards: usize,
    hot_fraction: f64,
    warmup: Nanos,
    measure: Nanos,
    seed: u64,
) -> FailoverData {
    let scenarios = FailoverScenario::ALL;
    let cells = run_grid(scenarios.len(), default_threads(), |i| {
        let scenario = scenarios[i];
        let base = FailoverRunConfig {
            num_clients,
            num_shards,
            hot_fraction,
            warmup,
            measure,
            seed,
            ..FailoverRunConfig::new(
                WorkloadSpec::shard(rate),
                FailoverArm::Full,
                Some(scenario),
            )
        };
        let oracle = run_failover_point(&FailoverRunConfig {
            scenario: None,
            ..base
        });
        let arms = FailoverArm::ALL
            .iter()
            .map(|&arm| (arm, run_failover_point(&FailoverRunConfig { arm, ..base })))
            .collect();
        FailoverCell {
            scenario,
            oracle,
            arms,
        }
    });
    FailoverData { cells }
}
