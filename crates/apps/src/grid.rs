//! Deterministic parallel grid execution.
//!
//! Every experiment in this crate is an embarrassingly parallel grid:
//! independent simulation cells (one [`RunConfig`](crate::runner::RunConfig)
//! or a small fixed bundle of them), each fully determined by its own
//! config and seed, merged into a result list whose order must not depend
//! on scheduling. [`run_grid`] provides exactly that: cells execute on a
//! scoped thread pool in whatever order the OS schedules them, but each
//! result lands in the slot of its *input index*, so the output is
//! bit-for-bit identical to running the cells serially — the simulator
//! itself stays single-threaded and deterministic per cell, parallelism
//! lives strictly *across* cells.
//!
//! The unit tests pin order preservation; `tests/parallel_grid.rs` pins
//! the end-to-end guarantee by diffing a parallel chaos grid against the
//! serial one.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default worker-thread count for grid experiments: the machine's
/// available parallelism, capped so a huge host does not oversubscribe
/// memory with hundreds of concurrent simulations.
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Runs `count` independent jobs across up to `threads` OS threads and
/// returns their results **in input order** (`out[i] == job(i)`).
///
/// Jobs are claimed from a shared atomic counter, so long and short cells
/// interleave without static partitioning skew. Each job must be a pure
/// function of its index (all simulation cells are: the config carries
/// the seed), which makes the output independent of thread count and
/// scheduling — `run_grid(n, 8, f)` is bitwise identical to
/// `(0..n).map(f)`.
///
/// `threads == 1` degenerates to a plain serial loop on the calling
/// thread (no spawns), which keeps single-core CI and debugging runs
/// free of any threading noise.
///
/// # Panics
///
/// Panics if `threads == 0`, or propagates the panic of any job.
pub fn run_grid<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "run_grid needs at least one thread");
    if threads == 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    let workers = threads.min(count);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, job(i)));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            // Completion order varies with scheduling; slot index does not.
            for (i, result) in handle.join().expect("grid worker panicked") {
                slots[i] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn results_arrive_in_input_order() {
        let out = run_grid(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_for_stateful_jobs() {
        // A job whose output depends only on its index, even though the
        // work length varies wildly per index.
        let job = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        };
        assert_eq!(run_grid(40, 4, job), run_grid(40, 1, job));
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let seen = Mutex::new(vec![0u32; 64]);
        run_grid(64, 6, |i| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.into_inner().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn degenerate_shapes_work() {
        assert_eq!(run_grid(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_grid(1, 4, |i| i), vec![0]);
        assert_eq!(run_grid(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_grid(1, 0, |i| i);
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!(t >= 1 && t <= 16);
    }
}
