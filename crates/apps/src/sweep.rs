//! Load sweeps: the Figure 4 harness.
//!
//! For each offered rate, [`run_sweep`] runs the workload under Nagle off
//! (the Redis default), Nagle on, and — optionally — the dynamic policy,
//! and collects per-point results. From a sweep one can read the paper's
//! headline quantities: the SLO-sustainable range per configuration, the
//! cutoff rate where batching starts winning, and the latency improvement
//! at a given rate.

use littles::Nanos;

use crate::grid::{default_threads, run_grid};
use crate::runner::{run_point, NagleSetting, PointResult, RunConfig};
use crate::workload::WorkloadSpec;

/// One sweep row: the same rate under each configuration.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Offered rate (requests/second).
    pub rate_rps: f64,
    /// Nagle off (TCP_NODELAY, the Redis default).
    pub off: PointResult,
    /// Nagle on.
    pub on: PointResult,
    /// Dynamic toggling, when requested.
    pub dynamic: Option<PointResult>,
}

/// A full sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept rows, ascending by rate.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// The highest offered rate whose *measured mean latency* meets `slo`
    /// under the given accessor (e.g. off/on), i.e. the paper's
    /// "sustainable range of tolerable latencies".
    pub fn sustainable_rate(
        &self,
        slo: Nanos,
        pick: impl Fn(&SweepRow) -> &PointResult,
    ) -> Option<f64> {
        self.rows
            .iter()
            .filter(|row| {
                pick(row)
                    .measured_mean
                    .is_some_and(|m| m <= slo)
            })
            .map(|row| row.rate_rps)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// The lowest rate at which Nagle-on measures no worse than Nagle-off
    /// (the "cutoff" vertical line of Figure 4).
    pub fn cutoff_rate(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|row| match (row.on.measured_mean, row.off.measured_mean) {
                (Some(on), Some(off)) => on <= off,
                _ => false,
            })
            .map(|row| row.rate_rps)
    }

    /// Like [`cutoff_rate`](Self::cutoff_rate) but judged by the
    /// *byte-unit estimates* — Figure 4 checks whether the estimated
    /// cutoff coincides with the measured one (4a: yes; 4b: no).
    pub fn estimated_cutoff_rate(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(
                |row| match (row.on.estimated_bytes, row.off.estimated_bytes) {
                    (Some(on), Some(off)) => on <= off,
                    _ => false,
                },
            )
            .map(|row| row.rate_rps)
    }
}

/// Runs a sweep over `rates` for the workload produced by `spec_at`.
///
/// Rows run in parallel across worker threads (each row's two-or-three
/// simulation cells stay serial within it); results are merged back in
/// rate order, so the output is bitwise identical to a serial sweep.
pub fn run_sweep(
    rates: &[f64],
    spec_at: impl Fn(f64) -> WorkloadSpec + Sync,
    base: &RunConfig,
    include_dynamic: bool,
) -> SweepResult {
    let rows = run_grid(rates.len(), default_threads(), |i| {
        let rate = rates[i];
        let mk = |nagle: NagleSetting| RunConfig {
            workload: spec_at(rate),
            nagle,
            ..*base
        };
        SweepRow {
            rate_rps: rate,
            off: run_point(&mk(NagleSetting::Off)),
            on: run_point(&mk(NagleSetting::On)),
            dynamic: include_dynamic.then(|| {
                // Inherit the base config's objective when it is
                // already dynamic; default to the paper's
                // "prefer latency" policy otherwise.
                let objective = match base.nagle {
                    NagleSetting::Dynamic { objective } => objective,
                    _ => batchpolicy::Objective::MinLatency,
                };
                run_point(&mk(NagleSetting::Dynamic { objective }))
            }),
        }
    });
    SweepResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CpuUtil;

    fn pr(rate: f64, mean_us: u64, est_us: u64) -> PointResult {
        PointResult {
            offered_rps: rate,
            achieved_rps: rate,
            measured_mean: Some(Nanos::from_micros(mean_us)),
            measured_p50: None,
            measured_p99: None,
            samples: 100,
            estimated_bytes: Some(Nanos::from_micros(est_us)),
            estimated_packets: None,
            estimated_messages: None,
            estimated_hint: None,
            tracker_mean: None,
            srtt: None,
            client_cpu: CpuUtil {
                app: 0.0,
                softirq: 0.0,
            },
            server_cpu: CpuUtil {
                app: 0.0,
                softirq: 0.0,
            },
            packets_to_server: 0,
            packets_to_client: 0,
            nagle_holds: 0,
            client_on_fraction: None,
            server_on_fraction: None,
            aimd_mean_limit: None,
            exchanges_received: 0,
            num_clients: 1,
            per_client: Vec::new(),
            server_aggregate_latency: None,
            link_faults: Vec::new(),
            fault_blackout_time: Nanos::ZERO,
            client_breaker_trips: None,
            server_breaker_trips: None,
            plane_nagle_switches: None,
            plane_delack_switches: None,
            plane_cork_switches: None,
            plane_explorations: None,
            plane_cork_limit: None,
            validation: None,
            client_restarts: 0,
            fault_restarts: 0,
            events: 0,
        }
    }

    fn synthetic() -> SweepResult {
        // off: 100, 200, 600, 2000 µs; on: 250, 240, 300, 400 µs.
        let rows = [
            (10_000.0, 100, 250),
            (20_000.0, 200, 240),
            (30_000.0, 600, 300),
            (40_000.0, 2_000, 400),
        ]
        .iter()
        .map(|&(rate, off_us, on_us)| SweepRow {
            rate_rps: rate,
            off: pr(rate, off_us, off_us),
            on: pr(rate, on_us, on_us),
            dynamic: None,
        })
        .collect();
        SweepResult { rows }
    }

    #[test]
    fn sustainable_rate_respects_slo() {
        let s = synthetic();
        let slo = Nanos::from_micros(500);
        assert_eq!(s.sustainable_rate(slo, |r| &r.off), Some(20_000.0));
        assert_eq!(s.sustainable_rate(slo, |r| &r.on), Some(40_000.0));
    }

    #[test]
    fn cutoff_is_first_rate_where_on_wins() {
        // At 30 kRPS on (300 µs) first beats off (600 µs).
        let s = synthetic();
        assert_eq!(s.cutoff_rate(), Some(30_000.0));
        assert_eq!(s.estimated_cutoff_rate(), Some(30_000.0));
    }

    #[test]
    fn no_cutoff_when_off_always_wins() {
        let mut s = synthetic();
        for row in &mut s.rows {
            row.on.measured_mean = Some(Nanos::from_secs(1));
        }
        assert_eq!(s.cutoff_rate(), None);
    }
}
