//! Evaluation applications and experiment harnesses.
//!
//! This crate rebuilds the paper's evaluation setup on the simulated
//! stack: a Redis-like key-value server ([`server::RedisServer`]), a
//! Lancet-like open-loop load generator ([`loadgen::LancetClient`]), the
//! RESP protocol they speak ([`resp`]), calibrated CPU cost profiles
//! ([`cost`]), and the harnesses that regenerate every figure
//! ([`experiments`]).
//!
//! The entry points most users want:
//!
//! * [`runner::run_point`] — run one (workload, configuration) pair and
//!   get measured + estimated performance.
//! * [`sweep::run_sweep`] — a load sweep across Nagle on/off/dynamic (the
//!   Figure 4 harness).
//! * [`experiments`] — `figure2()`, `figure4a()`, `figure4b()`,
//!   `dynamic_toggle()`: the paper's figures as functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod driver;
pub mod experiments;
pub mod failover;
pub mod grid;
pub mod kv;
pub mod loadgen;
pub mod proxy;
pub mod resp;
pub mod runner;
pub mod server;
pub mod shard;
pub mod sweep;
pub mod workload;

pub use cost::{AppCosts, CostProfile};
pub use driver::{
    EstimateRecorder, HintRecorder, ListenerDriver, ListenerPlaneDriver, PlaneDriver, PolicyDriver,
    ProxyDriver,
};
pub use failover::{
    run_failover_point, FailoverArm, FailoverPointResult, FailoverRunConfig, FailoverScenario,
};
pub use loadgen::{KeyPool, LancetClient};
pub use proxy::{ProxyApp, Resilience, ShardRouter};
pub use runner::{run_point, ClientResult, NagleSetting, PointResult, RunConfig};
pub use server::RedisServer;
pub use shard::{run_shard_point, ShardPointResult, ShardRunConfig, ShardSetting};
pub use sweep::{run_sweep, SweepResult};
pub use workload::WorkloadSpec;
