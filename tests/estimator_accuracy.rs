//! End-to-end estimator accuracy against measured latency (paper §4,
//! first key result: "our estimates are accurate").
//!
//! Full-stack runs of the Figure 4a workload: at each rate the byte-unit
//! Little's-law estimate, the message-unit estimate, and the hint-based
//! estimate must track the measured mean latency. Tolerances are loose —
//! the paper claims usable accuracy, not perfection — but tight enough to
//! catch a broken exchange, a wrong queue, or a sign error in the
//! decomposition.

use e2e_batching::e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;

fn cfg(rate: f64, nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(100),
        measure: Nanos::from_millis(400),
        ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
    }
}

fn rel_err(estimate: Nanos, measured: Nanos) -> f64 {
    (estimate.as_micros_f64() - measured.as_micros_f64()).abs() / measured.as_micros_f64()
}

#[test]
fn hint_estimate_tracks_measured_within_15_percent() {
    for rate in [10_000.0, 40_000.0, 70_000.0] {
        for nagle in [NagleSetting::Off, NagleSetting::On] {
            let r = run_point(&cfg(rate, nagle));
            let measured = r.measured_mean.expect("samples");
            let hint = r.estimated_hint.expect("hints flowed");
            assert!(
                rel_err(hint, measured) < 0.15,
                "rate {rate} {nagle:?}: hint {hint} vs measured {measured}"
            );
        }
    }
}

#[test]
fn byte_estimate_is_accurate_for_uniform_sizes_under_load() {
    // The paper's prototype (byte units) is accurate on the SET-only
    // workload once the connection carries steady load. (At very low load
    // the unacked window dominated by idle time is noisier, as in the
    // paper's own Figure 4a left edge.)
    for rate in [40_000.0, 70_000.0, 85_000.0] {
        let r = run_point(&cfg(rate, NagleSetting::Off));
        let measured = r.measured_mean.expect("samples");
        let bytes = r.estimated_bytes.expect("exchange flowed");
        assert!(
            rel_err(bytes, measured) < 0.35,
            "rate {rate}: byte estimate {bytes} vs measured {measured}"
        );
    }
}

#[test]
fn message_estimate_is_accurate_for_uniform_sizes() {
    for rate in [40_000.0, 70_000.0] {
        let r = run_point(&cfg(rate, NagleSetting::Off));
        let measured = r.measured_mean.expect("samples");
        let msgs = r.estimated_messages.expect("exchange flowed");
        assert!(
            rel_err(msgs, measured) < 0.35,
            "rate {rate}: message estimate {msgs} vs measured {measured}"
        );
    }
}

#[test]
fn tracker_ground_truth_matches_histogram() {
    // Two independent measurement paths — the latency histogram and the
    // Little's-law request tracker — must agree (they observe the same
    // requests; the tracker completes at read time rather than after the
    // per-response processing charge, hence the small slack).
    let r = run_point(&cfg(50_000.0, NagleSetting::Off));
    let hist = r.measured_mean.expect("samples");
    let tracker = r.tracker_mean.expect("tracker");
    assert!(
        rel_err(tracker, hist) < 0.12,
        "tracker {tracker} vs histogram {hist}"
    );
}

#[test]
fn estimates_correctly_rank_nagle_configurations() {
    // What the dynamic policy actually needs: at low load the estimates
    // must rank OFF better; past the cutoff they must rank ON better.
    let low_off = run_point(&cfg(10_000.0, NagleSetting::Off));
    let low_on = run_point(&cfg(10_000.0, NagleSetting::On));
    assert!(
        low_off.estimated_bytes.unwrap() < low_on.estimated_bytes.unwrap(),
        "at 10 kRPS the estimates must favour TCP_NODELAY"
    );

    let high_off = run_point(&cfg(85_000.0, NagleSetting::Off));
    let high_on = run_point(&cfg(85_000.0, NagleSetting::On));
    assert!(
        high_on.estimated_bytes.unwrap() < high_off.estimated_bytes.unwrap(),
        "at 85 kRPS the estimates must favour Nagle"
    );
    // And the measurements agree with the ranking.
    assert!(low_off.measured_mean.unwrap() < low_on.measured_mean.unwrap());
    assert!(high_on.measured_mean.unwrap() < high_off.measured_mean.unwrap());
}

#[test]
fn exchange_frequency_does_not_change_accuracy_much() {
    // Paper §5: "Little's law estimates remain accurate regardless" of the
    // exchange interval. Run the same point with the default interval and
    // verify estimates exist and are sane (the interval itself is part of
    // TcpConfig; the ablation bench sweeps it — here we just pin the
    // invariant that sparse exchange still estimates).
    let r = run_point(&cfg(40_000.0, NagleSetting::Off));
    assert!(r.exchanges_received > 100, "exchange stream healthy");
    let measured = r.measured_mean.unwrap();
    let hint = r.estimated_hint.unwrap();
    assert!(rel_err(hint, measured) < 0.15);
}

#[test]
fn rtt_baseline_misses_end_to_end_latency() {
    // Paper §2: SRTT "performs poorly" as an end-to-end proxy. The
    // sharpest case: Nagle's pre-transmission hold never appears in a
    // per-segment RTT sample (the clock starts at transmit), so at low
    // load with Nagle on, SRTT misses most of the latency entirely.
    let r = run_point(&cfg(5_000.0, NagleSetting::On));
    let measured = r.measured_mean.expect("samples");
    let srtt = r.srtt.expect("RTT sampled");
    assert!(
        srtt.as_micros_f64() * 2.0 < measured.as_micros_f64(),
        "SRTT {srtt} must miss the Nagle hold in measured {measured}"
    );
    let hint = r.estimated_hint.expect("hints flowed");
    assert!(
        rel_err(hint, measured) < rel_err(srtt, measured),
        "the end-to-end estimate ({hint}) must beat SRTT ({srtt}) vs {measured}"
    );

    // And near the no-Nagle knee, SRTT is a worse estimator than the
    // hint exchange even though ACK timing sees some of the queueing.
    let r = run_point(&cfg(85_000.0, NagleSetting::Off));
    let measured = r.measured_mean.expect("samples");
    let srtt = r.srtt.expect("RTT sampled");
    let hint = r.estimated_hint.expect("hints flowed");
    assert!(
        rel_err(hint, measured) < rel_err(srtt, measured),
        "hint {hint} should out-estimate SRTT {srtt} vs measured {measured}"
    );
}
