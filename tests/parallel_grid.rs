//! Parallel grid acceptance: scheduling must never leak into results.
//!
//! The grid runner executes simulation cells on worker threads but
//! merges results by input index, so a parallel grid must be *bitwise*
//! identical to the serial one — same structs, same floats, same order.
//! This is the property that lets every experiment fan out across cores
//! without giving up replayable determinism.

use e2e_batching::e2e_apps::experiments::ChaosClass;
use e2e_batching::e2e_apps::grid::run_grid;
use e2e_batching::e2e_apps::{run_point, NagleSetting, PointResult, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;

/// A small but real chaos-style grid: fan-in width x fault intensity,
/// each cell a full faulted simulation.
fn grid_configs() -> Vec<RunConfig> {
    let mut configs = Vec::new();
    for &n in &[2usize, 4, 8] {
        for &intensity in &[0.25, 1.0] {
            configs.push(RunConfig {
                warmup: Nanos::from_millis(20),
                measure: Nanos::from_millis(60),
                num_clients: n,
                seed: 0x9A1D,
                fault: ChaosClass::Loss.fault_at(intensity),
                ..RunConfig::new(WorkloadSpec::fig4a(12_000.0), NagleSetting::Off)
            });
        }
    }
    configs
}

/// Every field of every cell — including the floats, compared by bit
/// pattern via `Debug`'s roundtrip formatting — must match between a
/// four-thread run and the serial loop, in the same order.
#[test]
fn parallel_grid_is_bitwise_identical_to_serial() {
    let configs = grid_configs();
    let parallel: Vec<PointResult> = run_grid(configs.len(), 4, |i| run_point(&configs[i]));
    let serial: Vec<PointResult> = configs.iter().map(run_point).collect();

    assert_eq!(parallel.len(), serial.len());
    for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
        assert_eq!(
            p.achieved_rps.to_bits(),
            s.achieved_rps.to_bits(),
            "cell {i}: achieved_rps diverged"
        );
        assert_eq!(p.samples, s.samples, "cell {i}: samples diverged");
        assert_eq!(
            p.measured_p99, s.measured_p99,
            "cell {i}: p99 diverged"
        );
        assert_eq!(
            p.packets_to_server, s.packets_to_server,
            "cell {i}: packet count diverged"
        );
        assert_eq!(p.events, s.events, "cell {i}: event count diverged");
        // And the whole struct, via Debug's exact float roundtripping.
        assert_eq!(
            format!("{p:?}"),
            format!("{s:?}"),
            "cell {i}: some field diverged"
        );
    }
}

/// Thread count is not allowed to matter either: 2, 4, and many-threads
/// runs all agree with each other.
#[test]
fn thread_count_does_not_change_results() {
    let configs = grid_configs();
    let render = |threads: usize| -> String {
        run_grid(configs.len(), threads, |i| run_point(&configs[i]))
            .iter()
            .map(|r| format!("{r:?}"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let two = render(2);
    assert_eq!(two, render(4));
    assert_eq!(two, render(13));
}
