//! `core::multi` coverage: the per-host estimator registry under skewed
//! fan-in.
//!
//! Three connections at 100:10:1 throughput ratios feed one
//! [`EstimatorRegistry`]; the throughput-weighted aggregate must be
//! dominated by the hot connection, and a policy fed the aggregate must
//! converge exactly as it would watching the hot connection alone.

use e2e_batching::batchpolicy::{BatchToggler, EpsilonGreedy, Objective};
use e2e_batching::e2e_core::combine::EndpointSnapshots;
use e2e_batching::e2e_core::{DelaySet, Estimate, EstimatorRegistry, MultiConnectionAggregator};
use e2e_batching::littles::wire::{WireExchange, WireScale};
use e2e_batching::littles::{Nanos, QueueState};

const PERIOD_US: u64 = 100;

/// One synthetic connection: `items` requests per 100 µs period, each
/// spending `hold_us` in the client's unread queue (the only non-zero
/// local queue, so the decomposed latency is `hold_us` plus the remote
/// hold). The remote side holds one item for `remote_hold_us` per period
/// so exchanges keep changing.
struct SyntheticConn {
    items: i64,
    hold_us: u64,
    remote_hold_us: u64,
    local_unread: QueueState,
    local_unacked: QueueState,
    local_ackdelay: QueueState,
    remote_unread: QueueState,
    remote_unacked: QueueState,
    remote_ackdelay: QueueState,
}

impl SyntheticConn {
    fn new(items: i64, hold_us: u64, remote_hold_us: u64) -> Self {
        SyntheticConn {
            items,
            hold_us,
            remote_hold_us,
            local_unread: QueueState::new(Nanos::ZERO),
            local_unacked: QueueState::new(Nanos::ZERO),
            local_ackdelay: QueueState::new(Nanos::ZERO),
            remote_unread: QueueState::new(Nanos::ZERO),
            remote_unacked: QueueState::new(Nanos::ZERO),
            remote_ackdelay: QueueState::new(Nanos::ZERO),
        }
    }

    /// Advances one period ending at `tick`, returning the local
    /// snapshots and the remote exchange at the tick.
    fn advance(&mut self, period: u64) -> (Nanos, EndpointSnapshots, WireExchange) {
        let us = Nanos::from_micros;
        let t0 = us(period * PERIOD_US);
        self.local_unread.track(t0, self.items);
        self.local_unread.track(t0 + us(self.hold_us), -self.items);
        self.remote_unread.track(t0, 1);
        self.remote_unread.track(t0 + us(self.remote_hold_us), -1);
        let tick = t0 + us(PERIOD_US);
        let local = EndpointSnapshots {
            unacked: self.local_unacked.peek(tick),
            unread: self.local_unread.peek(tick),
            ackdelay: self.local_ackdelay.peek(tick),
        };
        let remote = WireExchange::pack(
            &self.remote_unacked.peek(tick),
            &self.remote_unread.peek(tick),
            &self.remote_ackdelay.peek(tick),
            WireScale::UNSCALED,
        );
        (tick, local, remote)
    }
}

/// Drives the registry for `periods` ticks and returns the final
/// aggregate.
fn run_registry(periods: u64) -> (EstimatorRegistry, Vec<f64>) {
    // 100:10:1 items per period; the hot connection is also the fastest
    // (50 µs local hold), the cold ones are slow (90 µs).
    let mut conns = [
        SyntheticConn::new(100, 50, 10),
        SyntheticConn::new(10, 90, 10),
        SyntheticConn::new(1, 90, 10),
    ];
    let mut reg = EstimatorRegistry::new(WireScale::UNSCALED, 1.0);
    for p in 0..periods {
        for (id, conn) in conns.iter_mut().enumerate() {
            let (tick, local, remote) = conn.advance(p);
            reg.update(id as u64, tick, local, Some(remote));
        }
    }
    let tputs = (0..3)
        .map(|id| reg.last(id).map(|e| e.throughput).unwrap_or(0.0))
        .collect();
    (reg, tputs)
}

#[test]
fn throughput_ratios_are_as_constructed() {
    let (_, tputs) = run_registry(50);
    // 100 / 10 / 1 items per 100 µs → 1M / 100k / 10k items per second.
    assert!((tputs[0] / tputs[1] - 10.0).abs() < 0.5, "{tputs:?}");
    assert!((tputs[1] / tputs[2] - 10.0).abs() < 0.5, "{tputs:?}");
}

#[test]
fn aggregate_is_dominated_by_the_hot_connection() {
    let (reg, _) = run_registry(50);
    assert_eq!(reg.connections(), 3);
    let hot = reg.last(0).expect("hot connection estimated");
    let cold = reg.last(1).expect("cold connection estimated");
    let agg = reg.aggregate().expect("aggregate");
    assert_eq!(agg.connections, 3);

    // The weighted aggregate must sit near the hot connection's latency
    // (within ~10%), far from the plain mean of the three.
    let hot_us = hot.latency.as_micros_f64();
    let agg_us = agg.latency.as_micros_f64();
    let plain_mean_us = (hot.latency.as_micros_f64()
        + cold.latency.as_micros_f64()
        + reg.last(2).expect("conn 2").latency.as_micros_f64())
        / 3.0;
    assert!(
        (agg_us - hot_us).abs() / hot_us < 0.10,
        "aggregate {agg_us:.1} µs should hug the hot connection {hot_us:.1} µs"
    );
    assert!(
        (agg_us - hot_us).abs() < (agg_us - plain_mean_us).abs(),
        "aggregate {agg_us:.1} µs should be closer to hot {hot_us:.1} than to the plain mean {plain_mean_us:.1}"
    );
    // Total throughput is the sum of the three.
    let sum: f64 = (0..3).map(|id| reg.last(id).unwrap().throughput).sum();
    assert!((agg.throughput - sum).abs() / sum < 1e-9);
}

fn synthetic_estimate(latency_us: u64, tput: f64) -> Estimate {
    Estimate {
        at: Nanos::ZERO,
        latency: Nanos::from_micros(latency_us),
        smoothed_latency: Nanos::from_micros(latency_us),
        throughput: tput,
        local_view: Nanos::ZERO,
        remote_view: Nanos::ZERO,
        confidence: 1.0,
        remote_stale: false,
        components: DelaySet::default(),
    }
}

/// A policy fed the three-connection aggregate converges to the same arm,
/// in the same decision sequence, as one watching the hot connection
/// alone: the cold connections' contributions are noise the weighting
/// suppresses.
#[test]
fn policy_on_aggregate_converges_like_hot_connection_alone() {
    let mut solo = EpsilonGreedy::new(Objective::MinLatency, 0.05, 2, 0.5, 7);
    let mut multi = EpsilonGreedy::new(Objective::MinLatency, 0.05, 2, 0.5, 7);
    let mut solo_decisions = Vec::new();
    let mut multi_decisions = Vec::new();
    for _ in 0..2_000 {
        // Batching on improves the hot connection 500 → 100 µs; the cold
        // connections sit at 300 µs regardless.
        let solo_lat = if solo.current() { 100 } else { 500 };
        solo_decisions.push(solo.decide(&synthetic_estimate(solo_lat, 10_000.0)));

        let hot_lat = if multi.current() { 100 } else { 500 };
        let mut agg = MultiConnectionAggregator::new();
        agg.add(synthetic_estimate(hot_lat, 10_000.0));
        agg.add(synthetic_estimate(300, 100.0));
        agg.add(synthetic_estimate(300, 10.0));
        multi_decisions.push(multi.decide_aggregate(&agg.aggregate().expect("aggregate")));
    }
    assert!(multi.current(), "aggregate-fed policy settles on batching");
    let on_solo = solo_decisions.iter().filter(|&&d| d).count();
    let on_multi = multi_decisions.iter().filter(|&&d| d).count();
    assert!(
        on_multi > 1_600,
        "aggregate-fed policy should exploit 'on': {on_multi}/2000"
    );
    // Same RNG seed, same objective: the cold connections shift scores a
    // few percent but must not change where the policy converges.
    assert!(
        (on_solo as i64 - on_multi as i64).unsigned_abs() < 200,
        "solo {on_solo} vs aggregate {on_multi} on-decisions diverged"
    );
}
