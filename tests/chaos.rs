//! Chaos acceptance: fault injection with graceful degradation.
//!
//! The PR's four acceptance gates live here: (a) a faulted N = 8 run
//! replays bit-identically across executions, (b) the socket invariant
//! gates are demonstrably non-vacuous under reordered / duplicated /
//! lost arrivals, (c) the adaptive policy's P99 stays within the stated
//! bound of the static oracle on a reduced chaos grid, and (d) a
//! stale-snapshot scenario (blackout + staleness bound) demonstrably
//! trips the circuit-breaker fallback path.

use e2e_batching::e2e_apps::experiments::{
    chaos, ChaosClass, CHAOS_BOUND_FACTOR, CHAOS_BOUND_SLACK, CHAOS_STALENESS_BOUND,
};
use e2e_batching::e2e_apps::{
    run_point, CostProfile, LancetClient, NagleSetting, RedisServer, RunConfig, WorkloadSpec,
};
use e2e_batching::littles::Nanos;
use e2e_batching::simnet::{
    run, CpuContext, DuplicateConfig, EventQueue, FaultConfig, GilbertElliott, LinkConfig,
    ReorderConfig,
};
use e2e_batching::tcpsim::{Host, HostId, NetSim, TcpConfig};

fn faulted_n8_cfg(nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(50),
        measure: Nanos::from_millis(150),
        num_clients: 8,
        seed: 0xCAA05,
        fault: ChaosClass::Loss.fault_at(1.0),
        ..RunConfig::new(WorkloadSpec::fig4a(24_000.0), nagle)
    }
}

/// (a) The faulted N = 8 topology replays exactly: same samples, same
/// latencies, same packet counts, and the same per-link fault tallies.
#[test]
fn faulted_n8_run_is_deterministic_across_invocations() {
    let a = run_point(&faulted_n8_cfg(NagleSetting::Off));
    let b = run_point(&faulted_n8_cfg(NagleSetting::Off));

    assert_eq!(a.num_clients, 8);
    assert!(a.samples > 0, "faulted run must still measure traffic");
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.measured_p99, b.measured_p99);
    assert_eq!(a.packets_to_server, b.packets_to_server);
    assert_eq!(a.packets_to_client, b.packets_to_client);
    assert_eq!(a.achieved_rps.to_bits(), b.achieved_rps.to_bits());

    assert_eq!(a.link_faults.len(), 8, "one fault tally per duplex link");
    assert_eq!(a.link_faults, b.link_faults);
    assert!(
        a.link_faults.iter().map(|f| f.drops).sum::<u64>() > 0,
        "the loss chain must actually have dropped packets"
    );
    for (ca, cb) in a.per_client.iter().zip(&b.per_client) {
        assert_eq!(ca.samples, cb.samples);
        assert_eq!(ca.measured_mean, cb.measured_mean);
        assert_eq!(ca.achieved_rps.to_bits(), cb.achieved_rps.to_bits());
    }
}

/// The adaptive stack (breaker + staleness-aware estimators) replays
/// exactly too — including the breaker trip counts.
#[test]
fn faulted_adaptive_run_is_deterministic() {
    let cfg = RunConfig {
        staleness_bound: Some(CHAOS_STALENESS_BOUND),
        breaker: Some(e2e_batching::batchpolicy::BreakerConfig::default()),
        ..faulted_n8_cfg(NagleSetting::Dynamic {
            objective: e2e_batching::batchpolicy::Objective::MinLatency,
        })
    };
    let a = run_point(&cfg);
    let b = run_point(&cfg);

    assert_eq!(a.samples, b.samples);
    assert_eq!(a.measured_p99, b.measured_p99);
    assert_eq!(a.link_faults, b.link_faults);
    assert_eq!(a.client_breaker_trips, b.client_breaker_trips);
    assert_eq!(a.server_breaker_trips, b.server_breaker_trips);
    assert_eq!(a.client_on_fraction, b.client_on_fraction);
    assert_eq!(a.server_on_fraction, b.server_on_fraction);
}

/// (b) Builds a faulted star directly and checks the invariant gates ran
/// against genuinely impaired traffic: the server-side sockets classified
/// real out-of-order and duplicate arrivals (and the gates did not fire —
/// the run completing is the proof, since a violation panics).
#[test]
fn invariant_gates_nonvacuous_under_reorder_dup_loss() {
    let n = 8;
    let profile = CostProfile::calibrated();
    let tcp = TcpConfig::default();
    let warmup = Nanos::from_millis(10);
    let end = Nanos::from_millis(150);

    let fault = FaultConfig {
        loss: Some(GilbertElliott::bursty(0.02, 4.0)),
        reorder: Some(ReorderConfig {
            probability: 0.5,
            max_extra: Nanos::from_micros(500),
        }),
        duplicate: Some(DuplicateConfig { probability: 0.2 }),
        start_at: Nanos::from_millis(10),
        ..FaultConfig::default()
    };

    let clients: Vec<LancetClient> = (0..n)
        .map(|_| LancetClient::new(WorkloadSpec::fig4a(6_000.0), profile.app, tcp, warmup, end))
        .collect();
    let server = RedisServer::new(profile.app);
    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId(i),
                CpuContext::new("client-app"),
                CpuContext::new("client-softirq"),
                profile.client_stack,
                tcp,
            )
        })
        .collect();
    let server_host = Host::new(
        HostId(n),
        CpuContext::new("server-app"),
        CpuContext::new("server-softirq"),
        profile.server_stack,
        tcp,
    );

    let mut sim = NetSim::star_with_faults(
        clients,
        server,
        client_hosts,
        server_host,
        LinkConfig::default(),
        0xC4A05,
        fault,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);
    run(&mut sim, &mut queue, end);

    let plan = sim.fault_plan().expect("fault plan is live");
    let totals = plan
        .per_link_counters()
        .iter()
        .fold((0u64, 0u64, 0u64), |acc, c| {
            (acc.0 + c.drops, acc.1 + c.duplicates, acc.2 + c.reorders)
        });
    assert!(totals.0 > 0, "loss chain never dropped");
    assert!(totals.1 > 0, "duplication never fired");
    assert!(totals.2 > 0, "reordering never fired");

    // The impairments must have reached the receive-side classification
    // gates: across the server's sockets, both impaired-arrival classes
    // were observed, and every socket still booked real traffic.
    let socks: Vec<_> = sim.server_host().socket_ids().collect();
    let mut ooo = 0u64;
    let mut dups = 0u64;
    for s in &socks {
        let inv = sim.server_host().socket(*s).invariants();
        ooo += inv.rx_out_of_order();
        dups += inv.rx_duplicates();
        assert!(inv.unread.entered() > 0, "socket {s:?}: no request bytes");
        assert!(inv.unacked.entered() > 0, "socket {s:?}: no response bytes");
    }
    assert!(ooo > 0, "no out-of-order arrival ever classified");
    assert!(dups > 0, "no duplicate arrival ever classified");
}

/// (c) + (d) on a reduced chaos grid: the adaptive policy stays within
/// the stated bound of the static oracle in every cell, and the blackout
/// cell — where shared snapshots go stale — trips the breaker fallback.
#[test]
fn adaptive_policy_bounded_and_fallback_trips_under_blackout() {
    let data = chaos(
        &[ChaosClass::Loss, ChaosClass::Blackout],
        &[1.0],
        &[4],
        24_000.0,
        Nanos::from_millis(50),
        Nanos::from_millis(150),
        0xC4A05,
    );
    assert_eq!(data.cells.len(), 2);
    for c in &data.cells {
        for (label, p) in [("off", &c.off), ("on", &c.on), ("adaptive", &c.adaptive)] {
            assert!(p.samples > 0, "{}/{label}: no samples", c.class.name());
        }
        assert!(
            c.within_bound(CHAOS_BOUND_FACTOR, CHAOS_BOUND_SLACK),
            "{}: adaptive p99 {:?} breaks the stated bound vs oracle {:?}",
            c.class.name(),
            c.adaptive.measured_p99,
            c.oracle_p99(),
        );
    }

    let blackout = data
        .cells
        .iter()
        .find(|c| c.class == ChaosClass::Blackout)
        .expect("blackout cell");
    assert!(
        !blackout.adaptive.fault_blackout_time.is_zero(),
        "links never went dark"
    );
    let trips = blackout.adaptive.client_breaker_trips.unwrap_or(0)
        + blackout.adaptive.server_breaker_trips.unwrap_or(0);
    assert!(
        trips > 0,
        "stale snapshots under blackout must trip the breaker fallback"
    );
}
