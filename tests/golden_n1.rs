//! Golden-trace equivalence across topology refactors.
//!
//! Each topology generalization (two-host pair → N-client star, then
//! star → general directed graph) must leave the already-working paths
//! *bit-identical*: same seed, same event order, same RNG stream, same
//! results. The first test pins a digest of short N=1 runs covering the
//! figure-1/2/4a/4b machinery against a golden file generated on the
//! pre-refactor code; a star expressed as the general graph must
//! reproduce it bitwise. The second pins an N=16 fan-in digest so the
//! multi-spoke routing path (per-link queues, shared server host) is
//! covered too, not just the degenerate single-link case.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! BLESS_GOLDEN=1 cargo test --test golden_n1
//! ```

use e2e_batching::e2e_apps::experiments::figure2;
use e2e_batching::e2e_apps::runner::{run_point, NagleSetting, PointResult, RunConfig};
use e2e_batching::e2e_apps::workload::WorkloadSpec;
use e2e_batching::littles::Nanos;

const GOLDEN_PATH: &str = "tests/golden/n1_digest.txt";
const FANIN_GOLDEN_PATH: &str = "tests/golden/fanin16_digest.txt";

fn fmt_ns(v: Option<Nanos>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.as_nanos().to_string())
}

fn fmt_f64(v: f64) -> String {
    // Bit-exact float representation: the whole point is bit-identity.
    format!("{:016x}", v.to_bits())
}

fn digest_point(label: &str, r: &PointResult) -> String {
    format!(
        "{label} samples={} achieved={} mean={} p50={} p99={} est_b={} est_p={} est_m={} \
         est_h={} tracker={} srtt={} ccpu={}/{} scpu={}/{} pkts={}+{} holds={} exch={}",
        r.samples,
        fmt_f64(r.achieved_rps),
        fmt_ns(r.measured_mean),
        fmt_ns(r.measured_p50),
        fmt_ns(r.measured_p99),
        fmt_ns(r.estimated_bytes),
        fmt_ns(r.estimated_packets),
        fmt_ns(r.estimated_messages),
        fmt_ns(r.estimated_hint),
        fmt_ns(r.tracker_mean),
        fmt_ns(r.srtt),
        fmt_f64(r.client_cpu.app),
        fmt_f64(r.client_cpu.softirq),
        fmt_f64(r.server_cpu.app),
        fmt_f64(r.server_cpu.softirq),
        r.packets_to_server,
        r.packets_to_client,
        r.nagle_holds,
        r.exchanges_received,
    )
}

/// Short windows keep the test fast while still exercising warmup
/// snapshots, estimator ticks, exchanges, and the drain phase.
fn quick(workload: WorkloadSpec, nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(20),
        measure: Nanos::from_millis(60),
        ..RunConfig::new(workload, nagle)
    }
}

fn compute_digest() -> String {
    let mut lines = Vec::new();

    // Figure 4a machinery: SET-only 16 KiB values, below and near the knee.
    for (tag, rate) in [("fig4a@20k", 20_000.0), ("fig4a@60k", 60_000.0)] {
        for (mode_tag, mode) in [("off", NagleSetting::Off), ("on", NagleSetting::On)] {
            let r = run_point(&quick(WorkloadSpec::fig4a(rate), mode));
            lines.push(digest_point(&format!("{tag}/{mode_tag}"), &r));
        }
    }

    // Figure 4b machinery: mixed SET:GET, byte-unit estimate degrades.
    let r = run_point(&quick(WorkloadSpec::fig4b(40_000.0), NagleSetting::Off));
    lines.push(digest_point("fig4b@40k/off", &r));

    // Figure 2 machinery: bare-metal vs VM client cells at a fixed rate.
    let f2 = figure2(
        20_000.0,
        Nanos::from_millis(20),
        Nanos::from_millis(60),
        0xE2E,
    );
    for cell in &f2.cells {
        lines.push(digest_point(
            &format!("fig2/{}/{}", cell.platform, if cell.nagle_on { "on" } else { "off" }),
            &cell.result,
        ));
    }

    lines.join("\n") + "\n"
}

fn check_or_bless(digest: &str, golden_path: &str, what: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(golden_path);
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, digest).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run `BLESS_GOLDEN=1 cargo test --test golden_n1`");
    assert_eq!(digest, golden, "{what} diverged from the golden trace");
}

#[test]
fn n1_runs_match_pre_refactor_golden() {
    check_or_bless(&compute_digest(), GOLDEN_PATH, "N=1 runs");
}

/// N=16 fan-in digest: sixteen spokes share the server host, so this
/// covers per-spoke link queues, softirq contention, and the aggregate
/// estimate's weighting — the paths a graph-routing regression would
/// perturb first while leaving N=1 untouched.
#[test]
fn fanin_n16_runs_match_golden() {
    let mut lines = Vec::new();
    for (mode_tag, mode) in [("off", NagleSetting::Off), ("on", NagleSetting::On)] {
        let r = run_point(&RunConfig {
            num_clients: 16,
            ..quick(WorkloadSpec::fig2(48_000.0, 512), mode)
        });
        lines.push(digest_point(&format!("fanin16@48k/{mode_tag}"), &r));
    }
    let digest = lines.join("\n") + "\n";
    check_or_bless(&digest, FANIN_GOLDEN_PATH, "N=16 fan-in runs");
}
