//! Multi-knob control-plane acceptance.
//!
//! Two gates: (a) an N = 8 star with the *joint* plane — Nagle +
//! delayed-ACK + cork limit all adaptive — replays bit-identically
//! across executions, per-knob counters included; (b) a plane with only
//! the Nagle knob attached is *bitwise* indistinguishable from the
//! pre-existing single-knob Dynamic policy, at N = 1 and N = 8 — the
//! refactor onto the unified actuation path must be a pure
//! generalization, not a behavior change.

use e2e_batching::batchpolicy::Objective;
use e2e_batching::e2e_apps::runner::{run_point, Overrides, PointResult, RunConfig};
use e2e_batching::e2e_apps::{NagleSetting, WorkloadSpec};
use e2e_batching::littles::Nanos;

fn knobs_cfg(nagle: NagleSetting, num_clients: usize) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(50),
        measure: Nanos::from_millis(150),
        num_clients,
        seed: 0xBE7C,
        overrides: Overrides {
            // The knobs experiment's uniform delack setting: long enough
            // that delayed-ACK decisions visibly matter.
            delack_timeout: Some(Nanos::from_micros(500)),
            ..Overrides::default()
        },
        ..RunConfig::new(WorkloadSpec::fig4a(24_000.0), nagle)
    }
}

fn opt_bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// Field-by-field bitwise comparison of two runs (floats via `to_bits`:
/// the whole point is bit-identity, not approximate equality).
fn assert_bitwise_equal(a: &PointResult, b: &PointResult) {
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.achieved_rps.to_bits(), b.achieved_rps.to_bits());
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.measured_p50, b.measured_p50);
    assert_eq!(a.measured_p99, b.measured_p99);
    assert_eq!(a.estimated_bytes, b.estimated_bytes);
    assert_eq!(a.estimated_packets, b.estimated_packets);
    assert_eq!(a.estimated_messages, b.estimated_messages);
    assert_eq!(a.estimated_hint, b.estimated_hint);
    assert_eq!(a.tracker_mean, b.tracker_mean);
    assert_eq!(a.srtt, b.srtt);
    assert_eq!(a.client_cpu.app.to_bits(), b.client_cpu.app.to_bits());
    assert_eq!(a.server_cpu.app.to_bits(), b.server_cpu.app.to_bits());
    assert_eq!(a.packets_to_server, b.packets_to_server);
    assert_eq!(a.packets_to_client, b.packets_to_client);
    assert_eq!(a.nagle_holds, b.nagle_holds);
    assert_eq!(a.exchanges_received, b.exchanges_received);
    assert_eq!(opt_bits(a.client_on_fraction), opt_bits(b.client_on_fraction));
    assert_eq!(opt_bits(a.server_on_fraction), opt_bits(b.server_on_fraction));
    assert_eq!(a.server_aggregate_latency, b.server_aggregate_latency);
    assert_eq!(a.per_client.len(), b.per_client.len());
    for (ca, cb) in a.per_client.iter().zip(&b.per_client) {
        assert_eq!(ca.samples, cb.samples);
        assert_eq!(ca.measured_mean, cb.measured_mean);
        assert_eq!(ca.achieved_rps.to_bits(), cb.achieved_rps.to_bits());
    }
}

/// (a) The all-knobs adaptive star replays exactly: decisions, per-knob
/// switch counters, exploration count, and every measured series.
#[test]
fn joint_plane_n8_run_is_deterministic() {
    let cfg = knobs_cfg(
        NagleSetting::Plane {
            objective: Objective::MinLatency,
            delack: true,
            cork: true,
        },
        8,
    );
    let a = run_point(&cfg);
    let b = run_point(&cfg);

    assert_eq!(a.num_clients, 8);
    assert!(a.samples > 0, "the run must measure traffic");
    assert_bitwise_equal(&a, &b);

    // The plane must have been live on all three knobs, and its decision
    // stream must replay exactly.
    assert!(a.plane_nagle_switches.is_some(), "plane counters populated");
    assert_eq!(a.plane_nagle_switches, b.plane_nagle_switches);
    assert_eq!(a.plane_delack_switches, b.plane_delack_switches);
    assert_eq!(a.plane_cork_switches, b.plane_cork_switches);
    assert_eq!(a.plane_explorations, b.plane_explorations);
    assert_eq!(a.plane_cork_limit, b.plane_cork_limit);
    assert!(
        a.plane_explorations.unwrap_or(0) > 0,
        "coordinated exploration must have run"
    );
}

/// (b) A plane with only the Nagle knob attached is the single-knob
/// Dynamic policy, bit for bit: same seeds, same decision stream, same
/// actuation (one Nagle setting per tick through the apply path), so
/// every measured quantity matches exactly.
#[test]
fn nagle_only_plane_is_bitwise_identical_to_dynamic() {
    for n in [1usize, 8] {
        let plane = run_point(&knobs_cfg(
            NagleSetting::Plane {
                objective: Objective::MinLatency,
                delack: false,
                cork: false,
            },
            n,
        ));
        let dynamic = run_point(&knobs_cfg(
            NagleSetting::Dynamic {
                objective: Objective::MinLatency,
            },
            n,
        ));
        assert!(plane.samples > 0, "N={n}: the run must measure traffic");
        assert_bitwise_equal(&plane, &dynamic);
        // The single-knob plane reports the same decision mix the
        // dedicated Dynamic driver reports.
        assert_eq!(
            opt_bits(plane.client_on_fraction),
            opt_bits(dynamic.client_on_fraction),
            "N={n}: client decision streams diverged"
        );
    }
}
