//! The dynamic-toggling end-to-end result (paper §4's "had they been
//! used" claim, §5's proposed mechanism, actually closed-loop here).
//!
//! Each endpoint runs an ε-greedy bandit over its live end-to-end
//! estimates and flips its own Nagle switch. The claim under test: the
//! dynamic policy stays close to the better static configuration at every
//! load — without knowing the workload in advance.

use e2e_batching::batchpolicy::Objective;
use e2e_batching::e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;

fn cfg(rate: f64, nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(200),
        measure: Nanos::from_millis(600),
        ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
    }
}

fn dynamic() -> NagleSetting {
    NagleSetting::Dynamic {
        objective: Objective::MinLatency,
    }
}

#[test]
fn dynamic_close_to_best_static_at_low_load() {
    let off = run_point(&cfg(10_000.0, NagleSetting::Off));
    let on = run_point(&cfg(10_000.0, NagleSetting::On));
    let dy = run_point(&cfg(10_000.0, dynamic()));
    let best = off
        .measured_mean
        .unwrap()
        .min(on.measured_mean.unwrap())
        .as_micros_f64();
    let worst = off
        .measured_mean
        .unwrap()
        .max(on.measured_mean.unwrap())
        .as_micros_f64();
    let d = dy.measured_mean.unwrap().as_micros_f64();
    // Exploration costs something, but the policy must land much closer
    // to the winner than to the loser.
    assert!(
        d < best + (worst - best) * 0.5,
        "dynamic {d:.1} should approach best {best:.1} (worst {worst:.1})"
    );
}

#[test]
fn dynamic_close_to_best_static_past_the_cutoff() {
    let off = run_point(&cfg(85_000.0, NagleSetting::Off));
    let on = run_point(&cfg(85_000.0, NagleSetting::On));
    let dy = run_point(&cfg(85_000.0, dynamic()));
    let on_us = on.measured_mean.unwrap().as_micros_f64();
    let off_us = off.measured_mean.unwrap().as_micros_f64();
    let d = dy.measured_mean.unwrap().as_micros_f64();
    assert!(on_us < off_us, "sanity: Nagle wins at 85 kRPS");
    assert!(
        d < off_us,
        "dynamic {d:.1} must beat the static loser {off_us:.1}"
    );
    assert!(
        d < on_us * 2.0,
        "dynamic {d:.1} should be in the winner's neighbourhood {on_us:.1}"
    );
}

#[test]
fn dynamic_avoids_the_overload_collapse() {
    // At 100 kRPS TCP_NODELAY has collapsed (past its knee) while Nagle
    // still sustains. A policy frozen to the Redis default would be three
    // orders of magnitude off; the dynamic policy must stay sane.
    let off = run_point(&cfg(100_000.0, NagleSetting::Off));
    let dy = run_point(&cfg(100_000.0, dynamic()));
    let off_us = off.measured_mean.unwrap().as_micros_f64();
    let d = dy.measured_mean.unwrap().as_micros_f64();
    assert!(
        off_us > 10_000.0,
        "sanity: the static default collapses here, got {off_us:.0}"
    );
    assert!(
        d < 1_000.0,
        "dynamic must keep latency in the sane range, got {d:.0} µs"
    );
}

#[test]
fn dynamic_policies_actually_toggle() {
    let dy = run_point(&cfg(85_000.0, dynamic()));
    let client_frac = dy.client_on_fraction.expect("client policy ran");
    let server_frac = dy.server_on_fraction.expect("server policy ran");
    // Both endpoints made real decisions (not stuck at either extreme by
    // construction — ε-greedy explores).
    assert!(
        (0.01..=0.99).contains(&client_frac) || (0.01..=0.99).contains(&server_frac),
        "at least one endpoint explored: client {client_frac}, server {server_frac}"
    );
}

#[test]
fn deterministic_dynamic_runs() {
    let a = run_point(&cfg(60_000.0, dynamic()));
    let b = run_point(&cfg(60_000.0, dynamic()));
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.client_on_fraction, b.client_on_fraction);
}
