//! Adversary acceptance: adversarial metadata faults with peer-state
//! validation.
//!
//! Three gates: (a) an N = 8 run with *both* adversarial fault classes
//! active (exchange corruption + endpoint restarts) replays
//! bit-identically across executions, including every validation and
//! restart counter; (b) under corruption the validation machinery is
//! demonstrably non-vacuous — exchanges are garbled on the wire, the
//! validator rejects some of them, and the breaker trips to its safe
//! mode; (c) an endpoint restart mid-run is detected as an epoch change
//! and the connection recovers — the client reconnects, the estimator
//! resyncs, and goodput survives.

use e2e_batching::batchpolicy::Objective;
use e2e_batching::e2e_apps::experiments::{
    adversary_breaker, AdversaryClass, CHAOS_STALENESS_BOUND,
};
use e2e_batching::e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::e2e_core::ValidateConfig;
use e2e_batching::littles::Nanos;
use e2e_batching::simnet::FaultConfig;

/// Both adversarial classes at full intensity in one fault plan.
fn combined_fault() -> FaultConfig {
    let mut fault = AdversaryClass::Corrupt.fault_at(1.0);
    fault.restart = AdversaryClass::Restart.fault_at(1.0).restart;
    fault
}

fn guarded_cfg(n: usize, fault: FaultConfig) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(50),
        measure: Nanos::from_millis(150),
        num_clients: n,
        seed: 0xADE5,
        fault,
        staleness_bound: Some(CHAOS_STALENESS_BOUND),
        breaker: Some(adversary_breaker()),
        validate: Some(ValidateConfig::default()),
        overrides: e2e_batching::e2e_apps::runner::Overrides {
            min_rto: Some(Nanos::from_millis(5)),
            max_rto: Some(Nanos::from_millis(40)),
            ..Default::default()
        },
        ..RunConfig::new(
            WorkloadSpec::fig4a(24_000.0),
            NagleSetting::Dynamic {
                objective: Objective::MinLatency,
            },
        )
    }
}

/// (a) The full adversarial stack — corruption, restarts, validation,
/// epoch resync, reconnect backoff — replays exactly.
#[test]
fn adversarial_n8_run_is_deterministic_across_invocations() {
    let cfg = guarded_cfg(8, combined_fault());
    let a = run_point(&cfg);
    let b = run_point(&cfg);

    assert!(a.samples > 0, "faulted run must still measure traffic");
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.measured_p99, b.measured_p99);
    assert_eq!(a.packets_to_server, b.packets_to_server);
    assert_eq!(a.packets_to_client, b.packets_to_client);
    assert_eq!(a.achieved_rps.to_bits(), b.achieved_rps.to_bits());
    assert_eq!(a.link_faults, b.link_faults);
    assert_eq!(a.validation, b.validation);
    assert_eq!(a.client_restarts, b.client_restarts);
    assert_eq!(a.fault_restarts, b.fault_restarts);
    assert_eq!(a.client_breaker_trips, b.client_breaker_trips);
    assert_eq!(a.server_breaker_trips, b.server_breaker_trips);
    for (ca, cb) in a.per_client.iter().zip(&b.per_client) {
        assert_eq!(ca.samples, cb.samples);
        assert_eq!(ca.measured_mean, cb.measured_mean);
        assert_eq!(ca.achieved_rps.to_bits(), cb.achieved_rps.to_bits());
    }

    // Both classes actually fired in this combined plan.
    assert!(
        a.link_faults.iter().map(|f| f.corruptions).sum::<u64>() > 0,
        "corruption never fired"
    );
    assert!(a.fault_restarts > 0, "no restart was injected");
}

/// (b) Corruption makes the validation machinery do real work: garbled
/// exchanges hit the wire, the validator rejects a portion of them, and
/// repeated suspicion trips the breaker into its safe mode.
#[test]
fn corruption_rejects_are_nonvacuous_and_trip_the_breaker() {
    let r = run_point(&guarded_cfg(1, AdversaryClass::Corrupt.fault_at(1.0)));

    let corrupted: u64 = r.link_faults.iter().map(|f| f.corruptions).sum();
    assert!(corrupted > 0, "no exchange was ever corrupted");

    let v = r.validation.expect("validator configured");
    assert!(v.accepted > 0, "every exchange rejected — validator too strict");
    assert!(
        v.rejected > 0,
        "{corrupted} corruptions on the wire but zero rejections — validator vacuous"
    );
    let trips = r.client_breaker_trips.unwrap_or(0) + r.server_breaker_trips.unwrap_or(0);
    assert!(trips > 0, "sustained corruption must trip the breaker");
    assert!(r.samples > 0, "run must still measure traffic");
}

/// (c) A peer restart mid-run is detected as an epoch change (not a
/// gigantic wrapping delta) and the system recovers: clients observe the
/// reset and reconnect, exchanges resume, and goodput survives the
/// die/reconnect/resync cycles.
#[test]
fn restart_is_detected_as_epoch_change_and_recovers() {
    let r = run_point(&guarded_cfg(1, AdversaryClass::Restart.fault_at(1.0)));

    assert!(r.fault_restarts > 0, "no restart was injected");
    assert!(r.client_restarts > 0, "client never observed a reset");

    let v = r.validation.expect("validator configured");
    assert!(
        v.epoch_changes > 0,
        "restarts happened but no epoch change was detected: {v:?}"
    );

    // Recovery: the connection resynced after each restart — exchanges
    // kept flowing and most of the offered load was still served.
    assert!(r.exchanges_received > 0, "exchange stream never resumed");
    assert!(
        r.achieved_rps > 0.5 * r.offered_rps,
        "goodput collapsed across restarts: {:.0}/{:.0} rps",
        r.achieved_rps,
        r.offered_rps
    );
    assert!(r.samples > 0, "run must still measure traffic");
}
