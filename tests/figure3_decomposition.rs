//! Figure 3: the latency decomposition, validated on a deterministic
//! timeline.
//!
//! The paper derives `L ≈ L_unacked^local − L_ackdelay^remote +
//! L_unread^local + L_unread^remote` from the event timeline of one
//! request/response exchange. This test rebuilds that timeline with exact
//! queue tracking — every event at a hand-chosen instant — and checks that
//! the combined estimate matches the true end-to-end latency.

use e2e_batching::e2e_core::combine::{combine_delays, EndpointSnapshots, EndpointWindows};
use e2e_batching::littles::{Nanos, QueueState};

/// The timeline (all times in µs), mirroring Figure 3's numbered events:
///
/// * 0   — client `send` (request enters client unacked)          (1)
/// * 25  — request reaches server stack (enters server unread and
///   server ackdelay)                                             (4)
/// * 35  — server app reads the request (leaves server unread)    (5)
/// * 50  — server `send`s the response (enters server unacked);
///   the response piggybacks the request's ACK (leaves server
///   ackdelay)                                                    (6)
/// * 75  — response reaches the client stack (enters client unread,
///   client ackdelay); the ACK it carries clears the client's
///   unacked queue                                                (9)
/// * 90  — client app reads the response (leaves client unread)   (10)
/// * 100 — client's delayed ACK goes out (leaves client ackdelay);
///   it reaches the server at 125 (leaves server unacked)         (11→14)
///
/// True end-to-end latency: client send (0) → server read (35) plus
/// server send (50) → client read (90): 35 + 40 = 75 µs.
struct Timeline {
    client: [QueueState; 3], // unacked, unread, ackdelay
    server: [QueueState; 3],
}

fn run_timeline(periods: u64, period_us: u64) -> (Timeline, Nanos) {
    let us = Nanos::from_micros;
    let mut t = Timeline {
        client: [QueueState::new(Nanos::ZERO); 3],
        server: [QueueState::new(Nanos::ZERO); 3],
    };
    for p in 0..periods {
        let base = p * period_us;
        let at = |off: u64| us(base + off);
        // (1) client send.
        t.client[0].track(at(0), 1);
        // (4) request at server.
        t.server[1].track(at(25), 1);
        t.server[2].track(at(25), 1);
        // (5) server app read.
        t.server[1].track(at(35), -1);
        // (6) server send; piggybacked ACK clears server ackdelay.
        t.server[0].track(at(50), 1);
        t.server[2].track(at(50), -1);
        // (9) response at client; its ACK clears client unacked.
        t.client[1].track(at(75), 1);
        t.client[2].track(at(75), 1);
        t.client[0].track(at(75), -1);
        // (10) client app read.
        t.client[1].track(at(90), -1);
        // (11) client delayed ACK sent; (14) it clears server unacked.
        t.client[2].track(at(100), -1);
        debug_assert!(period_us > 125, "periods must not overlap");
        t.server[0].track(at(125), -1);
    }
    let end = us(periods * period_us);
    (t, end)
}

fn snapshots(q: &[QueueState; 3], at: Nanos) -> EndpointSnapshots {
    EndpointSnapshots {
        unacked: q[0].peek(at),
        unread: q[1].peek(at),
        ackdelay: q[2].peek(at),
    }
}

#[test]
fn decomposition_recovers_true_latency() {
    let period = 200u64; // request every 200 µs, no overlap
    let (t, end) = run_timeline(40, period);

    let zero = EndpointSnapshots::default();
    let client = EndpointWindows::between(&zero, &snapshots(&t.client, end)).unwrap();
    let server = EndpointWindows::between(&zero, &snapshots(&t.server, end)).unwrap();

    // Client-perspective decomposition.
    let set = combine_delays(&client, &server);
    // Components, as the derivation predicts:
    //   unacked(client)  = 75 µs (send → ACK arrives with response)
    //   ackdelay(server) = 25 µs (request arrival → piggybacked ACK)
    //   unread(client)   = 15 µs, unread(server) = 10 µs
    assert_eq!(set.unacked_near, Nanos::from_micros(75));
    assert_eq!(set.ackdelay_far, Nanos::from_micros(25));
    assert_eq!(set.unread_near, Nanos::from_micros(15));
    assert_eq!(set.unread_far, Nanos::from_micros(10));

    // L = 75 − 25 + 15 + 10 = 75 µs = true end-to-end latency.
    let true_latency = Nanos::from_micros(75);
    assert_eq!(set.latency(), true_latency);
}

#[test]
fn both_perspectives_bracket_truth_and_max_is_safe() {
    let (t, end) = run_timeline(40, 200);
    let zero = EndpointSnapshots::default();
    let client = EndpointWindows::between(&zero, &snapshots(&t.client, end)).unwrap();
    let server = EndpointWindows::between(&zero, &snapshots(&t.server, end)).unwrap();

    let from_client = combine_delays(&client, &server).latency();
    let from_server = combine_delays(&server, &client).latency();
    let best = from_client.max(from_server);

    let true_latency = Nanos::from_micros(75);
    // The max rule must not underestimate (the paper's rationale for it).
    assert!(best >= true_latency - Nanos::from_micros(1));
    // And it should stay close on this clean timeline.
    assert!(best <= true_latency + Nanos::from_micros(50));
}

#[test]
fn ackdelay_subtraction_matters() {
    // Without subtracting the remote ackdelay, the estimate would
    // overshoot by exactly that delay — quantify it.
    let (t, end) = run_timeline(40, 200);
    let zero = EndpointSnapshots::default();
    let client = EndpointWindows::between(&zero, &snapshots(&t.client, end)).unwrap();
    let server = EndpointWindows::between(&zero, &snapshots(&t.server, end)).unwrap();
    let set = combine_delays(&client, &server);

    let naive = set.unacked_near + set.unread_near + set.unread_far;
    assert_eq!(
        naive - set.latency(),
        Nanos::from_micros(25),
        "the delayed-ACK inflation the subtraction removes"
    );
}
