//! Long-horizon soak: the 32-bit wire clock wraps and nobody notices.
//!
//! Under the default `WireScale` (`time_shift = 10`) the u32 time field
//! of a wire snapshot wraps at `2^42 ns ≈ 4398 s ≈ 73.3 min` of
//! simulated time. The exchange path, the estimator's wrapping-delta
//! arithmetic, and the peer-state validator must all ride through that
//! wrap without a glitch: no spurious rejections, no epoch confusion,
//! and estimates that keep flowing on the far side.

use e2e_batching::e2e_apps::driver::EstimateRecorder;
use e2e_batching::e2e_apps::{CostProfile, LancetClient, RedisServer, WorkloadSpec};
use e2e_batching::e2e_core::ValidateConfig;
use e2e_batching::littles::Nanos;
use e2e_batching::simnet::{run, CpuContext, EventQueue, LinkConfig};
use e2e_batching::tcpsim::config::ExchangeConfig;
use e2e_batching::tcpsim::{Host, HostId, NetSim, TcpConfig, Unit};

/// Where the default-scale wire clock wraps: `(u32::MAX + 1) << 10` ns.
const WIRE_WRAP: Nanos = Nanos::from_nanos(1u64 << 42);

/// Runs a single low-rate connection from before the wire-clock wrap to
/// comfortably past it, with validation on, and checks the metadata
/// plane never hiccuped.
#[test]
fn estimator_and_validator_survive_u32_wire_clock_wrap() {
    let profile = CostProfile::calibrated();
    let tcp = TcpConfig {
        exchange: ExchangeConfig {
            enabled: true,
            min_interval: Nanos::from_micros(500),
            units: [true, false, true],
        },
        ..TcpConfig::default()
    };

    // ~73.5 minutes of virtual time. A low request rate and a coarse
    // estimator tick keep the event count (and the test's wall clock)
    // manageable; the wire clock advances with virtual time regardless.
    let warmup = Nanos::from_secs(1);
    let end = WIRE_WRAP + Nanos::from_secs(10);
    let rate = 200.0;

    let client = LancetClient::new(WorkloadSpec::fig4a(rate), profile.app, tcp, warmup, end)
        .with_tick_period(Nanos::from_millis(5))
        .with_recorder(EstimateRecorder::new(Unit::Bytes).with_validation(ValidateConfig::default()));
    let server = RedisServer::new(profile.app);
    let client_host = Host::new(
        HostId(0),
        CpuContext::new("client-app"),
        CpuContext::new("client-softirq"),
        profile.client_stack,
        tcp,
    );
    let server_host = Host::new(
        HostId(1),
        CpuContext::new("server-app"),
        CpuContext::new("server-softirq"),
        profile.server_stack,
        tcp,
    );

    let mut sim = NetSim::star(
        vec![client],
        server,
        vec![client_host],
        server_host,
        LinkConfig::default(),
        0x73_317,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);
    run(&mut sim, &mut queue, end);

    let lg = &sim.clients[0];
    let expected = rate * (end - warmup).as_secs_f64();
    assert!(
        (lg.completed as f64) > 0.9 * expected,
        "only {} of ~{expected:.0} requests completed",
        lg.completed
    );

    // The metadata plane must have stayed healthy across the wrap. A
    // garbled wrap would surface as *time* rejections (the wrapping
    // delta landing in the regressed half-range), *delay* rejections
    // (integral deltas torn across the wrap), or a phantom epoch change
    // — all of which must be exactly zero. The throughput check is
    // allowed a tiny tail: at 200 rps a 500 µs exchange window
    // occasionally catches a whole 16 KiB write against a near-idle
    // local reference rate, an instantaneous-burst artifact of the
    // plausibility heuristic that is uniform over the run and unrelated
    // to the clock wrap.
    let recorder = &lg.recorders[0];
    let stats = recorder
        .validation_stats()
        .expect("validator was configured");
    assert!(
        stats.accepted > 100_000,
        "soak should accept a large stream of exchanges, got {}",
        stats.accepted
    );
    assert_eq!(
        stats.time, 0,
        "wire-clock wrap must not look like a regressed clock: {stats:?}"
    );
    assert_eq!(
        stats.delay, 0,
        "wire-clock wrap must not tear the queue integrals: {stats:?}"
    );
    assert_eq!(
        stats.epoch_changes, 0,
        "wire-clock wrap must not look like a peer restart: {stats:?}"
    );
    assert_eq!(
        stats.rejected, stats.throughput,
        "only instantaneous-burst throughput rejections are expected: {stats:?}"
    );
    assert!(
        (stats.rejected as f64) < 0.002 * (stats.accepted as f64),
        "throughput false-positive tail should be marginal: {stats:?}"
    );

    // Estimates keep flowing on the far side of the wrap, and stay sane.
    let after_wrap = recorder
        .mean_latency_in(WIRE_WRAP, end)
        .expect("estimates past the wire-clock wrap");
    assert!(
        after_wrap > Nanos::from_micros(10) && after_wrap < Nanos::from_millis(10),
        "implausible post-wrap estimate {after_wrap}"
    );
    // And the sides agree: the wrap did not skew the estimate relative
    // to the pre-wrap regime at the same offered load.
    let before_wrap = recorder
        .mean_latency_in(Nanos::from_secs(1), Nanos::from_secs(60))
        .expect("estimates before the wrap");
    let ratio = after_wrap.as_nanos() as f64 / before_wrap.as_nanos() as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "estimate shifted across the wrap: before {before_wrap}, after {after_wrap}"
    );
}
