//! The §5 "Better Batching Heuristics" result: an AIMD-adapted gradual
//! batch limit tracks — and in the mid-range beats — the best static
//! Nagle setting, because a byte threshold can sit anywhere between
//! "send immediately" and "full trains" while on/off cannot.

use e2e_batching::batchpolicy::Objective;
use e2e_batching::e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;

fn cfg(rate: f64, nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(200),
        measure: Nanos::from_millis(600),
        ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
    }
}

fn aimd() -> NagleSetting {
    NagleSetting::AimdLimit {
        objective: Objective::MinLatency,
    }
}

#[test]
fn aimd_beats_both_statics_in_the_mid_range() {
    let rate = 70_000.0;
    let off = run_point(&cfg(rate, NagleSetting::Off));
    let on = run_point(&cfg(rate, NagleSetting::On));
    let a = run_point(&cfg(rate, aimd()));
    let us = |r: &e2e_batching::e2e_apps::PointResult| {
        r.measured_mean.expect("samples").as_micros_f64()
    };
    assert!(
        us(&a) < us(&off) && us(&a) < us(&on),
        "AIMD {:.1} should beat off {:.1} and on {:.1} at {rate}",
        us(&a),
        us(&off),
        us(&on)
    );
}

#[test]
fn aimd_stays_close_to_nodelay_at_low_load() {
    let rate = 10_000.0;
    let off = run_point(&cfg(rate, NagleSetting::Off));
    let on = run_point(&cfg(rate, NagleSetting::On));
    let a = run_point(&cfg(rate, aimd()));
    let us = |r: &e2e_batching::e2e_apps::PointResult| {
        r.measured_mean.expect("samples").as_micros_f64()
    };
    // Far closer to the NODELAY winner than to the Nagle loser.
    assert!(us(&a) < us(&off) + (us(&on) - us(&off)) * 0.25);
}

#[test]
fn aimd_avoids_the_nodelay_collapse() {
    let rate = 95_000.0;
    let off = run_point(&cfg(rate, NagleSetting::Off));
    let a = run_point(&cfg(rate, aimd()));
    let off_us = off.measured_mean.expect("samples").as_micros_f64();
    let a_us = a.measured_mean.expect("samples").as_micros_f64();
    assert!(off_us > 10_000.0, "sanity: NODELAY collapses at {rate}");
    assert!(a_us < 1_000.0, "AIMD must stay sane, got {a_us:.0} µs");
}

#[test]
fn aimd_limit_actually_adapts() {
    let r = run_point(&cfg(70_000.0, aimd()));
    let mean = r.aimd_mean_limit.expect("AIMD ran");
    // Between the extremes: neither pinned at 1 B (pure NODELAY) nor at
    // the 64 KiB cap (pure batching).
    assert!(
        mean > 100.0 && mean < 60_000.0,
        "limit should settle between the extremes, got {mean:.0}"
    );
    // The gate fired.
    assert!(r.nagle_holds == 0, "AIMD replaces Nagle, not stacks on it");
}
