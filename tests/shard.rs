//! Sharded-proxy acceptance: K = 4 shards behind a terminating proxy.
//!
//! Two gates from the two-tier PR live here: the skewed K = 4 grid must
//! replay bit-identically across invocations (the whole two-tier event
//! order — client arrivals, proxy re-framing, upstream flushes, per-shard
//! plane decisions — hangs off one `(time, seq)` queue), and the
//! proxy-side socket invariant ledgers must be demonstrably non-vacuous:
//! every client-facing *and* upstream socket on the proxy booked real
//! traffic in both directions.

use e2e_batching::batchpolicy::{Objective, RetryConfig};
use e2e_batching::e2e_apps::{
    run_shard_point, CostProfile, LancetClient, ProxyApp, RedisServer, Resilience, ShardRouter,
    ShardRunConfig, ShardSetting, WorkloadSpec,
};
use e2e_batching::littles::Nanos;
use e2e_batching::simnet::{
    run, CpuContext, EventQueue, FaultConfig, LinkConfig, RestartSchedule, ShardBrownout,
    ShardFaultPlan, WindowSchedule,
};
use e2e_batching::tcpsim::{Host, HostId, TcpConfig, TierSim};

fn k4_cfg(setting: ShardSetting) -> ShardRunConfig {
    ShardRunConfig {
        num_clients: 4,
        num_shards: 4,
        hot_fraction: 0.7,
        warmup: Nanos::from_millis(50),
        measure: Nanos::from_millis(150),
        seed: 0x5AAD_16,
        ..ShardRunConfig::new(WorkloadSpec::shard(30_000.0), setting)
    }
}

#[test]
fn k4_skewed_grid_replays_bit_identically() {
    for setting in [
        ShardSetting::Corner { nagle: false },
        ShardSetting::Adaptive {
            objective: Objective::MinLatency,
        },
    ] {
        let cfg = k4_cfg(setting);
        let a = run_shard_point(&cfg);
        let b = run_shard_point(&cfg);

        assert!(a.samples > 0, "run must carry traffic");
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.events, b.events);
        assert_eq!(a.measured_mean, b.measured_mean);
        assert_eq!(a.measured_p99, b.measured_p99);
        assert_eq!(a.achieved_rps.to_bits(), b.achieved_rps.to_bits());
        assert_eq!(a.hot_shard, b.hot_shard);
        assert_eq!(a.per_shard_requests, b.per_shard_requests);
        assert_eq!(a.shard_estimates, b.shard_estimates);
        assert_eq!(a.shard_rtt_p99, b.shard_rtt_p99);
        assert_eq!(a.hot_rank_fraction.map(f64::to_bits), b.hot_rank_fraction.map(f64::to_bits));
        for (fa, fb) in a.shard_on_fraction.iter().zip(&b.shard_on_fraction) {
            assert_eq!(fa.to_bits(), fb.to_bits());
        }
    }
}

/// The skew is deterministic in the seed and independent of the upstream
/// knob: every arm routes the same keys to the same shards, so the
/// corners and the adaptive run are measuring the same offered traffic.
#[test]
fn all_arms_route_the_same_skew() {
    let off = run_shard_point(&k4_cfg(ShardSetting::Corner { nagle: false }));
    let adaptive = run_shard_point(&k4_cfg(ShardSetting::Adaptive {
        objective: Objective::MinLatency,
    }));
    assert_eq!(off.hot_shard, adaptive.hot_shard);
    // The hot shard leads in both arms and carries the configured skew.
    for r in [&off, &adaptive] {
        let total: u64 = r.per_shard_requests.iter().sum();
        let hot = r.per_shard_requests[r.hot_shard];
        assert!(
            hot as f64 >= 0.6 * total as f64,
            "hot shard carried {hot}/{total}, expected ~70%"
        );
    }
}

/// Builds the two-tier topology directly and checks that every socket on
/// the proxy host — the N accepted client connections *and* the K
/// upstream connections it opened — booked real bytes through both
/// invariant ledgers. The conservation/continuity gates on the proxy's
/// sockets ran against live data on both legs, not on idle sockets.
#[test]
fn invariant_gates_are_nonvacuous_on_proxy_sockets() {
    let (n, k) = (4, 4);
    let profile = CostProfile::shard_tier();
    let tcp = TcpConfig::default();
    let warmup = Nanos::from_millis(20);
    let end = Nanos::from_millis(120);

    let mut spec = WorkloadSpec::shard(12_000.0);
    spec.rate_rps /= n as f64;
    let clients: Vec<LancetClient> = (0..n)
        .map(|_| LancetClient::new(spec, profile.app, tcp, warmup, end))
        .collect();
    let router = ShardRouter::new(k, 0x5AAD);
    let shard_ids: Vec<HostId> = (0..k).map(|j| HostId::from_index(n + 1 + j)).collect();
    let proxy = ProxyApp::new(profile.app, tcp, shard_ids, router);
    let shards: Vec<RedisServer> = (0..k).map(|_| RedisServer::new(profile.app)).collect();

    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId::from_index(i),
                CpuContext::new("client-app"),
                CpuContext::new("client-softirq"),
                profile.client_stack,
                tcp,
            )
        })
        .collect();
    let proxy_host = Host::new(
        HostId::from_index(n),
        CpuContext::new("proxy-app"),
        CpuContext::new("proxy-softirq"),
        profile.client_stack,
        tcp,
    );
    let shard_hosts: Vec<Host> = (0..k)
        .map(|j| {
            Host::new(
                HostId::from_index(n + 1 + j),
                CpuContext::new("shard-app"),
                CpuContext::new("shard-softirq"),
                profile.server_stack,
                tcp,
            )
        })
        .collect();

    let mut sim = TierSim::two_tier(
        clients,
        proxy,
        shards,
        client_hosts,
        proxy_host,
        shard_hosts,
        LinkConfig::default(),
        LinkConfig::default(),
        0x5AAD,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);
    run(&mut sim, &mut queue, end);

    assert_eq!(
        sim.proxy_host().socket_count(),
        n + k,
        "proxy terminates all client connections and opened every upstream"
    );
    let socks: Vec<_> = sim.proxy_host().socket_ids().collect();
    for s in socks {
        let inv = sim.proxy_host().socket(s).invariants();
        assert!(
            inv.unread.entered() > 0,
            "proxy socket {s:?}: no inbound bytes through the unread ledger"
        );
        assert!(
            inv.unacked.entered() > 0,
            "proxy socket {s:?}: no outbound bytes through the unacked ledger"
        );
    }
    // Every shard accepted exactly the proxy's upstream and served on it.
    for j in 0..k {
        assert_eq!(sim.shard_host(j).socket_count(), 1, "shard {j}");
        let s = sim.shard_host(j).socket_ids().next().expect("one socket");
        let inv = sim.shard_host(j).socket(s).invariants();
        assert!(inv.unread.entered() > 0, "shard {j}: no requests arrived");
        assert!(inv.unacked.entered() > 0, "shard {j}: no responses sent");
    }
    // The proxy actually forwarded and completed traffic. The run stops
    // dead at `end` with no drain phase, so a handful of requests may
    // still be in flight on the back leg — but never more than one per
    // upstream's unflushed tail.
    assert!(sim.proxy.stats.responses > 0);
    let in_flight = sim.proxy.stats.forwarded - sim.proxy.stats.responses;
    assert!(
        in_flight <= 2 * k as u64,
        "{in_flight} requests unaccounted for (forwarded {}, responses {})",
        sim.proxy.stats.forwarded,
        sim.proxy.stats.responses
    );
}

/// FIFO response pairing must survive an upstream reconnect: every
/// request in flight on an upstream when its connection tears down is
/// failed (or retried) at teardown — never left in the pairing queue to
/// be matched against the *next* connection's responses. The scenario
/// stalls shard 0 so in-flight requests pile up on its upstream, then
/// crashes it mid-stall; without the teardown drain the replacement
/// connection's first responses would pop the stale entries and every
/// later response would pair one slot off for the rest of the run
/// (orphans spike, goodput craters). Checked at both points: right
/// after the reset (queue emptied while the pile was provably deep) and
/// at the end (proxy healthy, accounting closed).
#[test]
fn fifo_pairing_survives_upstream_reconnect() {
    let (n, k) = (2, 2);
    let profile = CostProfile::shard_tier();
    let tcp = TcpConfig::default();
    let warmup = Nanos::from_millis(10);
    let end = Nanos::from_millis(120);
    let crash_at = Nanos::from_millis(32);

    let mut spec = WorkloadSpec::shard(24_000.0);
    spec.rate_rps /= n as f64;
    let clients: Vec<LancetClient> = (0..n)
        .map(|_| LancetClient::new(spec, profile.app, tcp, warmup, end))
        .collect();
    let router = ShardRouter::new(k, 0x5AAD);
    let shard_ids: Vec<HostId> = (0..k).map(|j| HostId::from_index(n + 1 + j)).collect();
    let proxy = ProxyApp::new(profile.app, tcp, shard_ids, router)
        .with_resilience(Resilience::timeout_only(RetryConfig::default()));
    let shards: Vec<RedisServer> = (0..k).map(|_| RedisServer::new(profile.app)).collect();

    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId::from_index(i),
                CpuContext::new("client-app"),
                CpuContext::new("client-softirq"),
                profile.client_stack,
                tcp,
            )
        })
        .collect();
    let proxy_host = Host::new(
        HostId::from_index(n),
        CpuContext::new("proxy-app"),
        CpuContext::new("proxy-softirq"),
        profile.client_stack,
        tcp,
    );
    let shard_hosts: Vec<Host> = (0..k)
        .map(|j| {
            Host::new(
                HostId::from_index(n + 1 + j),
                CpuContext::new("shard-app"),
                CpuContext::new("shard-softirq"),
                profile.server_stack,
                tcp,
            )
        })
        .collect();

    // One 4 ms stall on shard 0 starting at 30 ms (no repeat within the
    // run), with the crash pinned to 32 ms — mid-stall, when the
    // upstream's pairing queue is at its deepest.
    let faults = FaultConfig {
        shard: ShardFaultPlan {
            crash: Some(RestartSchedule {
                first_at: crash_at,
                period: Nanos::ZERO,
            }),
            crash_target: Some(0),
            brownout: Some(ShardBrownout {
                shard: 0,
                windows: WindowSchedule {
                    first_at: Nanos::from_millis(30),
                    period: Nanos::from_millis(1000),
                    duration: Nanos::from_millis(4),
                },
            }),
            ..ShardFaultPlan::default()
        },
        start_at: warmup,
        ..FaultConfig::default()
    };

    let mut sim = TierSim::two_tier_with_faults(
        clients,
        proxy,
        shards,
        client_hosts,
        proxy_host,
        shard_hosts,
        LinkConfig::default(),
        LinkConfig::default(),
        0x5AAD,
        faults,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);

    // Run up to just before the crash: the stall has held shard 0's
    // responses for 2 ms, so its pairing queue is provably deep.
    run(&mut sim, &mut queue, crash_at - Nanos::from_nanos(1));
    let piled = sim.proxy.upstream_waiting(0);
    assert!(
        piled >= 8,
        "stall should pile in-flight requests on shard 0's upstream, got {piled}"
    );

    // Step past the crash: the reset must have drained the pile into
    // failures, leaving at most the trickle of post-reset dispatches.
    run(&mut sim, &mut queue, crash_at + Nanos::from_micros(100));
    assert_eq!(sim.proxy.stats.upstream_resets, 1, "the crash resets the upstream once");
    let after = sim.proxy.upstream_waiting(0);
    assert!(
        after <= 4,
        "teardown left {after} stale entries in the pairing queue (was {piled})"
    );
    assert!(
        sim.proxy.stats.failed > 0,
        "drained in-flight requests must be failed back, not dropped silently"
    );

    // Run out the rest. A mis-paired queue would shift every subsequent
    // response one slot off permanently: orphans would grow for the rest
    // of the run and the last requests would never complete. Healthy
    // recovery means bounded failures, bounded orphans, closed books.
    run(&mut sim, &mut queue, end);
    let stats = &sim.proxy.stats;
    assert!(stats.responses > 1000, "proxy kept serving after the reconnect");
    assert!(
        stats.failed <= 80,
        "failures must stay confined to the fault window, got {}",
        stats.failed
    );
    assert!(
        stats.orphan_responses <= 40,
        "orphan responses must stay confined to the fault window, got {}",
        stats.orphan_responses
    );
    for j in 0..k {
        let depth = sim.proxy.upstream_waiting(j);
        assert!(depth <= 4, "shard {j}: {depth} requests still paired at end");
    }
    assert!(
        sim.proxy.pending_requests() <= 8,
        "pending ledger must drain, got {}",
        sim.proxy.pending_requests()
    );
    // Attempt accounting closes: every forwarded attempt was answered
    // (to a live request or as an orphan), failed at teardown/deadline,
    // or is part of the end-of-run tail above.
    let answered = stats.responses + stats.orphan_responses;
    let open = (0..k).map(|j| sim.proxy.upstream_waiting(j) as u64).sum::<u64>();
    assert!(
        stats.forwarded <= answered + stats.failed + open,
        "attempts leaked: forwarded {} > answered {answered} + failed {} + open {open}",
        stats.forwarded,
        stats.failed
    );
    let achieved: f64 = sim.clients.iter().map(|lg| lg.achieved_rps()).sum();
    assert!(
        achieved >= 0.85 * 24_000.0,
        "goodput cratered after the reconnect: {achieved:.0} rps"
    );
}
