//! The qualitative shapes of the paper's evaluation figures.
//!
//! These tests pin the *shape* claims — who wins where, that the cutoff
//! exists, that the SLO range extends, that byte-unit estimates break on
//! mixed sizes — on small, fast sweeps. EXPERIMENTS.md records the full
//! high-resolution runs.

use e2e_batching::e2e_apps::experiments::PAPER_SLO;
use e2e_batching::e2e_apps::{run_point, run_sweep, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;

fn base(rate: f64) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(100),
        measure: Nanos::from_millis(400),
        ..RunConfig::new(WorkloadSpec::fig4a(rate), NagleSetting::Off)
    }
}

#[test]
fn fig4a_nagle_hurts_at_low_load_and_penalty_shrinks() {
    // Left side of Figure 4a: batching is counterproductive at low load,
    // and the penalty decreases as load grows (held tails fill sooner).
    let mut penalties = Vec::new();
    for rate in [5_000.0, 20_000.0, 60_000.0] {
        let off = run_point(&RunConfig {
            nagle: NagleSetting::Off,
            ..base(rate)
        });
        let on = run_point(&RunConfig {
            nagle: NagleSetting::On,
            ..base(rate)
        });
        let off_us = off.measured_mean.unwrap().as_micros_f64();
        let on_us = on.measured_mean.unwrap().as_micros_f64();
        assert!(
            on_us > off_us,
            "at {rate} RPS Nagle must still hurt: on {on_us} vs off {off_us}"
        );
        penalties.push(on_us - off_us);
    }
    assert!(
        penalties[0] > penalties[1] && penalties[1] > penalties[2],
        "Nagle's penalty must shrink with load: {penalties:?}"
    );
}

#[test]
fn fig4a_cutoff_exists_and_estimates_find_it() {
    let rates = [20_000.0, 60_000.0, 80_000.0, 85_000.0];
    let sweep = run_sweep(&rates, WorkloadSpec::fig4a, &base(rates[0]), false);
    let measured = sweep.cutoff_rate().expect("a measured cutoff exists");
    let estimated = sweep.estimated_cutoff_rate().expect("an estimated cutoff");
    assert!(
        measured >= 60_000.0,
        "cutoff should sit past mid-load, got {measured}"
    );
    // Figure 4a's second key claim: the estimated cutoff coincides with
    // the measured one (within one grid step here).
    let m_idx = rates.iter().position(|&r| r == measured).unwrap();
    let e_idx = rates.iter().position(|&r| r == estimated).unwrap();
    assert!(
        m_idx.abs_diff(e_idx) <= 1,
        "cutoffs should coincide: measured {measured}, estimated {estimated}"
    );
}

#[test]
fn fig4a_nagle_extends_the_slo_range() {
    let rates = [70_000.0, 85_000.0, 95_000.0, 105_000.0, 115_000.0];
    let sweep = run_sweep(&rates, WorkloadSpec::fig4a, &base(rates[0]), false);
    let off = sweep
        .sustainable_rate(PAPER_SLO, |r| &r.off)
        .expect("off sustains something");
    let on = sweep
        .sustainable_rate(PAPER_SLO, |r| &r.on)
        .expect("on sustains something");
    assert!(
        on >= off * 1.2,
        "Nagle must extend the 500 µs range: off {off}, on {on}"
    );
}

#[test]
fn fig4a_latency_improvement_near_the_knee() {
    // Paper: at the highest rate both configurations sustain, batching
    // cuts latency several-fold (2.80x on their testbed).
    let rate = 85_000.0;
    let off = run_point(&RunConfig {
        nagle: NagleSetting::Off,
        ..base(rate)
    });
    let on = run_point(&RunConfig {
        nagle: NagleSetting::On,
        ..base(rate)
    });
    let ratio = off.measured_mean.unwrap().as_micros_f64()
        / on.measured_mean.unwrap().as_micros_f64();
    assert!(
        ratio > 1.5,
        "expected a multi-x latency win near the knee, got {ratio:.2}x"
    );
}

#[test]
fn fig4b_byte_estimate_diverges_but_hint_stays_accurate() {
    // Figure 4b: with 5% GETs (large responses), byte-weighted estimates
    // mislead while hints remain faithful. The mechanism this simulator
    // captures shows under batching: corking holds the 95% tiny SET
    // responses (driving per-request latency up) while the large GET
    // responses overflow the cork and flush immediately — and since GET
    // bytes are ~99% of response bytes, the byte-weighted estimate tracks
    // the fast large transfers and *underestimates*, the dangerous
    // direction for a batching policy. (With batching off the links are
    // symmetric and GET ≈ SET latency, so byte units happen to be
    // harmless there.)
    let rate = 70_000.0;
    let mixed = run_point(&RunConfig {
        workload: WorkloadSpec::fig4b(rate),
        nagle: NagleSetting::On,
        ..base(rate)
    });
    let measured = mixed.measured_mean.unwrap().as_micros_f64();
    let bytes = mixed.estimated_bytes.unwrap().as_micros_f64();
    let hint = mixed.estimated_hint.unwrap().as_micros_f64();
    assert!(
        (measured - bytes) / measured > 0.3,
        "byte estimate should badly underestimate on the mixed workload: \
         bytes {bytes:.0} vs measured {measured:.0}"
    );
    assert!(
        (hint - measured).abs() / measured < 0.15,
        "hints must stay accurate: hint {hint:.0} vs measured {measured:.0}"
    );

    // The divergence is a *unit* problem, not generic estimator error:
    // the uniform-size workload at the same rate and setting stays much
    // closer.
    let uniform = run_point(&RunConfig {
        nagle: NagleSetting::On,
        ..base(rate)
    });
    let u_meas = uniform.measured_mean.unwrap().as_micros_f64();
    let u_bytes = uniform.estimated_bytes.unwrap().as_micros_f64();
    let u_err = (u_meas - u_bytes).abs() / u_meas;
    assert!(
        (measured - bytes) / measured > u_err * 1.5,
        "mixing sizes must worsen the byte estimate: mixed {:.2} vs uniform {u_err:.2}",
        (measured - bytes) / measured
    );
}

#[test]
fn fig2_client_cpu_up_server_cpu_flat() {
    use e2e_batching::e2e_apps::experiments::figure2;
    let data = figure2(
        20_000.0,
        Nanos::from_millis(100),
        Nanos::from_millis(400),
        7,
    );
    let cpu_ratio = data.client_cpu_ratio();
    assert!(
        cpu_ratio > 1.8,
        "(a) VM client must burn much more CPU, got {cpu_ratio:.2}x"
    );
    let server_ratio = data.server_cpu_ratio();
    assert!(
        (server_ratio - 1.0).abs() < 0.1,
        "(b) server CPU must be unchanged, got {server_ratio:.2}x"
    );
    // (c) the Nagle penalty grows with the client's processing cost (the
    // direction of Figure 1's c-dependence; see EXPERIMENTS.md for the
    // sign-flip discussion).
    let delta = |platform: &str| {
        let get = |on: bool| {
            data.cells
                .iter()
                .find(|c| c.platform == platform && c.nagle_on == on)
                .unwrap()
                .result
                .measured_mean
                .unwrap()
                .as_micros_f64()
        };
        get(true) - get(false)
    };
    assert!(
        delta("vm") > delta("bare"),
        "Nagle's penalty must grow with client cost: bare {:.1} vs vm {:.1}",
        delta("bare"),
        delta("vm")
    );
}
