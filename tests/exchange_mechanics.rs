//! Mechanics of the metadata exchange (paper §3.2, §5).
//!
//! Verifies the 36-byte-per-unit accounting on the wire, that disabling
//! the exchange removes both the overhead and the estimates, and that the
//! overhead is negligible relative to payload traffic.

use e2e_batching::e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use e2e_batching::littles::Nanos;
use e2e_batching::tcpsim::segment::{e2e_option_bytes, E2E_OPTION_BYTES, HINT_OPTION_BYTES};

fn cfg(rate: f64) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(100),
        measure: Nanos::from_millis(300),
        ..RunConfig::new(WorkloadSpec::fig4a(rate), NagleSetting::Off)
    }
}

#[test]
fn single_unit_option_is_40_wire_bytes() {
    // 2 framing + 1 unit bitmap + 36 counter bytes, padded: the paper's
    // "36 bytes with its peer per exchange" plus option framing.
    assert_eq!(E2E_OPTION_BYTES, 40);
    assert_eq!(e2e_option_bytes(1), 40);
    assert_eq!(e2e_option_bytes(2), 76);
    assert_eq!(e2e_option_bytes(3), 112);
    assert_eq!(HINT_OPTION_BYTES, 16);
}

#[test]
fn exchanges_flow_and_estimates_exist() {
    let r = run_point(&cfg(30_000.0));
    assert!(r.exchanges_received > 50, "got {}", r.exchanges_received);
    assert!(r.estimated_bytes.is_some());
    assert!(r.estimated_messages.is_some());
    assert!(r.estimated_hint.is_some());
}

#[test]
fn exchange_overhead_is_negligible() {
    // The exchange interval is 500 µs; at 30 kRPS with ~16.5 KiB requests
    // the metadata is a vanishing fraction of traffic. Compare wire bytes
    // against a run with the exchange disabled.
    let with = run_point(&cfg(30_000.0));

    let mut quiet = cfg(30_000.0);
    quiet.use_hints = false;
    let without = run_point(&quiet);

    // Hints ride requests; disabling them trims client→server bytes.
    // (Exchanges are bounded by the min_interval in both runs.)
    assert!(with.packets_to_server >= without.packets_to_server);
    let ratio = with.packets_to_server as f64 / without.packets_to_server as f64;
    assert!(
        ratio < 1.02,
        "hint overhead should be <2% in packets, got {ratio:.4}"
    );
    // Both runs still served the same load.
    assert!((with.achieved_rps - without.achieved_rps).abs() / with.achieved_rps < 0.02);
}

#[test]
fn disabling_hints_removes_hint_estimates_only() {
    let mut c = cfg(30_000.0);
    c.use_hints = false;
    let r = run_point(&c);
    assert!(r.estimated_hint.is_none(), "no hints → no hint estimate");
    assert!(
        r.estimated_bytes.is_some(),
        "queue-state exchange is independent of hints"
    );
}
