//! Fan-in acceptance: N = 16 concurrent connections into one server.
//!
//! Two of the PR's acceptance gates live here: the N = 16 topology must
//! be deterministic across invocations, and the per-connection
//! `SocketInvariants` gates must be demonstrably non-vacuous (every one
//! of the 16 server-side sockets booked real traffic through its
//! ledgers).

use e2e_batching::batchpolicy::Objective;
use e2e_batching::e2e_apps::{
    run_point, CostProfile, LancetClient, NagleSetting, RedisServer, RunConfig, WorkloadSpec,
};
use e2e_batching::littles::Nanos;
use e2e_batching::simnet::{run, CpuContext, EventQueue, LinkConfig};
use e2e_batching::tcpsim::{Host, HostId, NetSim, TcpConfig};

fn n16_cfg(nagle: NagleSetting) -> RunConfig {
    RunConfig {
        warmup: Nanos::from_millis(50),
        measure: Nanos::from_millis(150),
        num_clients: 16,
        seed: 0xFA41_16,
        ..RunConfig::new(WorkloadSpec::fig4a(64_000.0), nagle)
    }
}

#[test]
fn n16_fanin_is_deterministic_across_invocations() {
    let a = run_point(&n16_cfg(NagleSetting::Off));
    let b = run_point(&n16_cfg(NagleSetting::Off));

    assert_eq!(a.num_clients, 16);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.measured_p99, b.measured_p99);
    assert_eq!(a.packets_to_server, b.packets_to_server);
    assert_eq!(a.packets_to_client, b.packets_to_client);
    assert_eq!(a.achieved_rps.to_bits(), b.achieved_rps.to_bits());
    assert_eq!(a.estimated_bytes, b.estimated_bytes);

    assert_eq!(a.per_client.len(), 16);
    for (ca, cb) in a.per_client.iter().zip(&b.per_client) {
        assert!(ca.samples > 0, "every connection must carry traffic");
        assert_eq!(ca.samples, cb.samples);
        assert_eq!(ca.measured_mean, cb.measured_mean);
        assert_eq!(ca.achieved_rps.to_bits(), cb.achieved_rps.to_bits());
        assert_eq!(ca.exchanges_received, cb.exchanges_received);
    }
}

/// The listener-wide dynamic policy path (shared ε-greedy over the
/// 16-connection aggregate) must be deterministic too, and must actually
/// produce a server-side aggregate view.
#[test]
fn n16_dynamic_policy_is_deterministic_and_aggregates() {
    let cfg = n16_cfg(NagleSetting::Dynamic {
        objective: Objective::MinLatency,
    });
    let a = run_point(&cfg);
    let b = run_point(&cfg);

    assert_eq!(a.samples, b.samples);
    assert_eq!(a.measured_mean, b.measured_mean);
    assert_eq!(a.packets_to_server, b.packets_to_server);
    assert_eq!(a.server_on_fraction, b.server_on_fraction);
    assert_eq!(a.server_aggregate_latency, b.server_aggregate_latency);

    assert!(
        a.server_on_fraction.is_some(),
        "listener policy must have decided"
    );
    assert!(
        a.server_aggregate_latency.is_some(),
        "listener policy must have formed aggregate estimates"
    );
}

/// Builds the 16-client star directly and checks that every server-side
/// socket's invariant ledgers booked real traffic: the conservation /
/// continuity gates ran against live data on all 16 connections, not on
/// idle sockets.
#[test]
fn invariant_gates_are_nonvacuous_on_all_16_connections() {
    let n = 16;
    let profile = CostProfile::calibrated();
    let tcp = TcpConfig::default();
    let warmup = Nanos::from_millis(20);
    let end = Nanos::from_millis(120);

    let clients: Vec<LancetClient> = (0..n)
        .map(|_| LancetClient::new(WorkloadSpec::fig4a(3_000.0), profile.app, tcp, warmup, end))
        .collect();
    let server = RedisServer::new(profile.app);
    let client_hosts: Vec<Host> = (0..n)
        .map(|i| {
            Host::new(
                HostId(i),
                CpuContext::new("client-app"),
                CpuContext::new("client-softirq"),
                profile.client_stack,
                tcp,
            )
        })
        .collect();
    let server_host = Host::new(
        HostId(n),
        CpuContext::new("server-app"),
        CpuContext::new("server-softirq"),
        profile.server_stack,
        tcp,
    );

    let mut sim = NetSim::star(
        clients,
        server,
        client_hosts,
        server_host,
        LinkConfig::default(),
        0x1617,
    );
    let mut queue = EventQueue::new();
    sim.start(&mut queue);
    run(&mut sim, &mut queue, end);

    assert_eq!(
        sim.server_host().socket_count(),
        n,
        "server accepted all connections"
    );
    let socks: Vec<_> = sim.server_host().socket_ids().collect();
    for s in socks {
        let inv = sim.server_host().socket(s).invariants();
        assert!(
            inv.unread.entered() > 0,
            "socket {s:?}: no request bytes through the unread ledger"
        );
        assert!(
            inv.unacked.entered() > 0,
            "socket {s:?}: no response bytes through the unacked ledger"
        );
        // The gates also verified departures, not just arrivals.
        assert!(inv.unread.left() > 0, "socket {s:?}: requests never read");
        assert!(inv.unacked.left() > 0, "socket {s:?}: responses never acked");
    }
    // Same on the client side of each connection.
    for i in 0..n {
        let sock = sim.clients[i].sock.expect("client connected");
        let inv = sim.host(i).socket(sock).invariants();
        assert!(inv.unacked.entered() > 0, "client {i}: sent nothing");
        assert!(inv.unread.entered() > 0, "client {i}: received nothing");
    }
}
