#!/bin/sh
# CI sequence: lint, build, test — in that order, failing fast.
set -eu

cd "$(dirname "$0")"

echo "==> linter self-test (lexer, model, call graph, rules, fixtures)"
cargo test -q -p xtask

echo "==> workspace-rule inputs are checked in"
# The RNG-stream manifest and the ratchet baselines are part of the
# linted contract: a missing file would silently read as an empty
# baseline, so their presence is asserted explicitly.
test -s crates/xtask/rng_streams.toml
test -s crates/xtask/lint_baselines/panic_reachability.txt
test -s crates/xtask/lint_baselines/hot_path_alloc.txt

echo "==> xtask lint (all rules; ratchets must not move up)"
cargo run -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> simperf smoke (event-loop throughput floor at N=64)"
cargo bench -q -p bench --bench simperf -- --smoke
# The full-mode snapshot (with the N=1024 row) is checked in; the smoke
# mode above guards the floor without rewriting machine-dependent wall
# times on every CI run.
test -s crates/bench/BENCH_simperf.json
grep -q '"bench": "simperf"' crates/bench/BENCH_simperf.json
grep -q '"num_clients": 1024' crates/bench/BENCH_simperf.json

echo "==> fanin smoke (N=4, short run)"
cargo run -q --release --example fanin -- --smoke

echo "==> chaos smoke (loss + blackout, N=4, bounded degradation)"
cargo run -q --release --example chaos -- --smoke

echo "==> knobs smoke (c=4us, N=8, joint plane within bound)"
cargo run -q --release --example knobs -- --smoke

echo "==> adversary smoke (corrupt + restart, N=1, validation load-bearing)"
cargo run -q --release --example adversary -- --smoke

echo "==> adversary bench regenerates BENCH_adversary.json"
rm -f crates/bench/BENCH_adversary.json
cargo bench -q -p bench --bench adversary >/dev/null
test -s crates/bench/BENCH_adversary.json
grep -q '"version": 1' crates/bench/BENCH_adversary.json
grep -q '"bench": "adversary"' crates/bench/BENCH_adversary.json

echo "==> shard smoke (two-tier proxy, N=8/K=4 skewed cell, bound holds)"
cargo run -q --release --example shard -- --smoke

echo "==> shard bench regenerates BENCH_shard.json (hot-shard rank + adaptive win)"
rm -f crates/bench/BENCH_shard.json
cargo bench -q -p bench --bench shard >/dev/null
test -s crates/bench/BENCH_shard.json
grep -q '"version": 1' crates/bench/BENCH_shard.json
grep -q '"bench": "shard"' crates/bench/BENCH_shard.json

echo "==> failover smoke (shard crash + brownout, defense ladder within bound)"
cargo run -q --release --example failover -- --smoke

echo "==> failover bench regenerates BENCH_failover.json (full stack holds, naive collapses)"
rm -f crates/bench/BENCH_failover.json
cargo bench -q -p bench --bench failover >/dev/null
test -s crates/bench/BENCH_failover.json
grep -q '"version": 1' crates/bench/BENCH_failover.json
grep -q '"bench": "failover"' crates/bench/BENCH_failover.json

echo "==> knobs bench regenerates BENCH_knobs.json"
rm -f crates/bench/BENCH_knobs.json
cargo bench -q -p bench --bench knobs >/dev/null
test -s crates/bench/BENCH_knobs.json
grep -q '"version": 1' crates/bench/BENCH_knobs.json
grep -q '"bench": "knobs"' crates/bench/BENCH_knobs.json

echo "==> ci.sh: all green"
