#!/bin/sh
# CI sequence: lint, build, test — in that order, failing fast.
set -eu

cd "$(dirname "$0")"

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fanin smoke (N=4, short run)"
cargo run -q --release --example fanin -- --smoke

echo "==> chaos smoke (loss + blackout, N=4, bounded degradation)"
cargo run -q --release --example chaos -- --smoke

echo "==> ci.sh: all green"
