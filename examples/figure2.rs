//! Figure 2: bare-metal vs. VM client at a fixed load.
//!
//! Runs the fixed-rate workload with the client on "bare metal" and
//! "inside a VM" (application-CPU multiplier), Nagle on and off, and
//! prints the three panels: (a) client CPU, (b) server CPU, (c) the
//! batching outcome per platform.
//!
//! ```sh
//! cargo run --release --example figure2 [rate_rps]
//! ```

use e2e_apps::experiments::figure2;
use littles::Nanos;

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rate"))
        .unwrap_or(20_000.0);
    let data = figure2(rate, Nanos::from_millis(200), Nanos::from_millis(800), 0xF16);

    println!("Figure 2 — fixed {rate:.0} req/s, 4 KiB SETs\n");
    println!(
        "{:>5} {:>6} | {:>10} {:>12} {:>12} | {:>12} {:>12}",
        "plat", "nagle", "latency", "cli app cpu", "cli sirq cpu", "srv app cpu", "srv sirq cpu"
    );
    println!("{}", "-".repeat(88));
    for cell in &data.cells {
        let r = &cell.result;
        println!(
            "{:>5} {:>6} | {:>10} {:>11.0}% {:>11.0}% | {:>11.0}% {:>11.0}%",
            cell.platform,
            if cell.nagle_on { "on" } else { "off" },
            r.measured_mean
                .map(|m| m.to_string())
                .unwrap_or_else(|| "n/a".into()),
            r.client_cpu.app * 100.0,
            r.client_cpu.softirq * 100.0,
            r.server_cpu.app * 100.0,
            r.server_cpu.softirq * 100.0,
        );
    }
    println!();
    println!(
        "(a) client CPU ratio vm/bare: {:.2}x  (paper: VM uses significantly more)",
        data.client_cpu_ratio()
    );
    println!(
        "(b) server CPU ratio vm/bare: {:.2}x  (paper: unchanged — same workload)",
        data.server_cpu_ratio()
    );
    println!(
        "(c) Nagle helps on bare: {} / on VM: {}",
        data.nagle_helps("bare"),
        data.nagle_helps("vm"),
    );
    println!(
        "    Nagle penalty (on − off): bare {} vs VM {} — the client's cost shifts\n\
         the batching tradeoff even though the server sees the same load.",
        delta(&data, "bare"),
        delta(&data, "vm"),
    );
}

fn delta(data: &e2e_apps::experiments::Figure2Data, platform: &str) -> String {
    let get = |on| {
        data.cells
            .iter()
            .find(|c| c.platform == platform && c.nagle_on == on)
            .and_then(|c| c.result.measured_mean)
    };
    match (get(true), get(false)) {
        (Some(on), Some(off)) if on >= off => format!("+{}", on - off),
        (Some(on), Some(off)) => format!("-{}", off - on),
        _ => "n/a".into(),
    }
}
