//! Calibration probe: prints the Figure 4a sweep as a table.

use e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use littles::Nanos;

fn main() {
    let rates: Vec<f64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("rate"))
        .collect();
    let rates = if rates.is_empty() {
        vec![5e3, 10e3, 20e3, 40e3, 60e3, 80e3, 100e3, 120e3, 140e3, 160e3]
    } else {
        rates
    };
    println!(
        "{:>8} | {:>9} {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>7} | srv-app-off srv-app-on cli-app-off",
        "rate", "off-meas", "off-est", "off-hint", "off-ach", "on-meas", "on-est", "on-hint", "on-ach"
    );
    for &rate in &rates {
        let mk = |nagle| RunConfig {
            warmup: Nanos::from_millis(100),
            measure: Nanos::from_millis(400),
            ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
        };
        let off = run_point(&mk(NagleSetting::Off));
        let on = run_point(&mk(NagleSetting::On));
        let us = |o: Option<Nanos>| o.map(|n| n.as_micros_f64()).unwrap_or(-1.0);
        println!(
            "{:>8.0} | {:>9.1} {:>9.1} {:>9.1} {:>7.0} | {:>9.1} {:>9.1} {:>9.1} {:>7.0} | {:.2} {:.2} {:.2}",
            rate,
            us(off.measured_mean), us(off.estimated_bytes), us(off.estimated_hint), off.achieved_rps,
            us(on.measured_mean), us(on.estimated_bytes), us(on.estimated_hint), on.achieved_rps,
            off.server_cpu.app, on.server_cpu.app, off.client_cpu.app,
        );
    }
}
