//! Failover: shard failure against the proxy's defense ladder.
//!
//! For each fault scenario (hot-shard crash mid-run, cold-shard CPU
//! brownout), runs the never-failed oracle plus four defense arms: the
//! naive proxy, deadlines only, budgeted retries, and the full
//! retry + hedge + breaker stack with ring-successor failover routing.
//! The claim under test: with the full stack, P99 and goodput stay
//! within a small factor of the oracle while the naive proxy collapses.
//!
//! ```sh
//! cargo run --release --example failover            # full grid + failover.json
//! cargo run --release --example failover -- --smoke # quick CI gate
//! ```

use e2e_apps::experiments::{
    failover, FailoverCell, FailoverData, FAILOVER_BOUND_FACTOR, FAILOVER_BOUND_SLACK,
    FAILOVER_NAIVE_FACTOR,
};
use e2e_apps::{FailoverArm, FailoverPointResult};
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn print_cells(data: &FailoverData) {
    for c in &data.cells {
        println!(
            "scenario {:<13} oracle: p99 {:>8}µs goodput {:>7.0} rps",
            c.scenario.label(),
            us(c.oracle.measured_p99),
            c.oracle.achieved_rps,
        );
        println!(
            "  {:>12} | {:>9} {:>7} | {:>7} {:>6} {:>6} {:>5} {:>6} {:>6} {:>5}",
            "arm", "p99-us", "ratio", "rps", "t/o", "retry", "hedge", "trips", "fails", "dedup"
        );
        for (arm, r) in &c.arms {
            println!(
                "  {:>12} | {:>9} {:>7} | {:>7.0} {:>6} {:>6} {:>5} {:>6} {:>6} {:>5}",
                arm.label(),
                us(r.measured_p99),
                c.p99_ratio(*arm)
                    .map(|x| format!("{x:.1}x"))
                    .unwrap_or_else(|| "n/a".into()),
                r.achieved_rps,
                r.timeouts,
                r.retries,
                r.hedges,
                r.breaker_trips,
                r.failed,
                r.dedup_hits,
            );
        }
    }
}

fn check_cell(c: &FailoverCell) {
    assert!(
        c.oracle.samples > 0 && c.oracle.failed == 0 && c.oracle.upstream_resets == 0,
        "{}: oracle run was not clean",
        c.scenario.label()
    );
    for (arm, r) in &c.arms {
        assert!(
            r.samples > 0,
            "{}: {} arm recorded no samples",
            c.scenario.label(),
            arm.label()
        );
    }
    // The fault actually bit: the defended arms observed it.
    let full = c.arm(FailoverArm::Full);
    assert!(
        full.upstream_resets + full.timeouts + full.hedges > 0,
        "{}: fault plan never engaged the full stack",
        c.scenario.label()
    );
    // The full stack holds the acceptance bound in *every* cell.
    assert!(
        c.full_within_bound(FAILOVER_BOUND_FACTOR, FAILOVER_BOUND_SLACK),
        "{}: full stack p99 {:?} / goodput {:.0} outside {FAILOVER_BOUND_FACTOR}x+{:?} of oracle p99 {:?} / goodput {:.0}",
        c.scenario.label(),
        full.measured_p99,
        full.achieved_rps,
        FAILOVER_BOUND_SLACK,
        c.oracle.measured_p99,
        c.oracle.achieved_rps,
    );
}

fn check_headline(data: &FailoverData) {
    // Somewhere in the grid the naive proxy collapsed — the ladder is
    // non-vacuous.
    assert!(
        data.cells
            .iter()
            .any(|c| c.naive_collapsed(FAILOVER_NAIVE_FACTOR)),
        "no cell pushed the naive proxy past {FAILOVER_NAIVE_FACTOR}x oracle p99"
    );
    // The defenses earned their counters: retries, hedges, and breaker
    // trips all fired somewhere.
    let (mut retries, mut hedges, mut trips, mut dedups) = (0, 0, 0, 0);
    for c in &data.cells {
        let full = c.arm(FailoverArm::Full);
        retries += full.retries + c.arm(FailoverArm::Retry).retries;
        hedges += full.hedges;
        trips += full.breaker_trips;
        dedups += full.dedup_hits + c.arm(FailoverArm::Retry).dedup_hits;
    }
    assert!(retries > 0, "no retry ever granted across the grid");
    assert!(hedges > 0, "no hedge ever granted across the grid");
    assert!(trips > 0, "no breaker ever tripped across the grid");
    assert!(dedups > 0, "idempotency window never deduplicated a write");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rate, warmup, measure) = if smoke {
        (20_000.0, Nanos::from_millis(50), Nanos::from_millis(250))
    } else {
        (30_000.0, Nanos::from_millis(200), Nanos::from_millis(800))
    };

    let data = failover(rate, 4, 4, 0.7, warmup, measure, 0xFA11);
    print_cells(&data);

    for c in &data.cells {
        check_cell(c);
    }
    if smoke {
        println!("failover smoke: OK (full stack within bound in every cell)");
    } else {
        check_headline(&data);
        std::fs::write("failover.json", to_json(&data)).expect("write failover.json");
        println!("full grid written to failover.json");
    }
}

fn point_json(r: &FailoverPointResult) -> String {
    format!(
        concat!(
            "{{\"p99_us\": {}, \"mean_us\": {}, \"achieved_rps\": {:.0}, ",
            "\"timeouts\": {}, \"retries\": {}, \"hedges\": {}, ",
            "\"breaker_trips\": {}, \"failovers\": {}, \"failed\": {}, ",
            "\"upstream_resets\": {}, \"orphans\": {}, \"dedup_hits\": {}, ",
            "\"shard_crashes\": {}}}"
        ),
        us(r.measured_p99).replace("n/a", "null"),
        us(r.measured_mean).replace("n/a", "null"),
        r.achieved_rps,
        r.timeouts,
        r.retries,
        r.hedges,
        r.breaker_trips,
        r.failovers,
        r.failed,
        r.upstream_resets,
        r.orphan_responses,
        r.dedup_hits,
        r.shard_crashes,
    )
}

fn to_json(data: &FailoverData) -> String {
    let rows: Vec<String> = data
        .cells
        .iter()
        .map(|c| {
            let arms: Vec<String> = c
                .arms
                .iter()
                .map(|(arm, r)| format!("\"{}\": {}", arm.label(), point_json(r)))
                .collect();
            format!(
                "    {{\"scenario\": \"{}\", \"oracle\": {}, {}}}",
                c.scenario.label(),
                point_json(&c.oracle),
                arms.join(", "),
            )
        })
        .collect();
    format!(
        "{{\n  \"version\": 1,\n  \"experiment\": \"failover\",\n  \"count\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.len(),
        rows.join(",\n")
    )
}
