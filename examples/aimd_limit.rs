//! The §5 "Better Batching Heuristics" sketch, running: an AIMD-adapted
//! gradual batching limit instead of binary Nagle toggling.
//!
//! At each load, compares TCP_NODELAY, Nagle-on, and the AIMD limit. The
//! limit should shrink toward "send immediately" at low load and grow
//! toward full trains under load — without any on/off cliff.
//!
//! ```sh
//! cargo run --release --example aimd_limit
//! ```

use batchpolicy::Objective;
use e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use littles::Nanos;

fn main() {
    println!("AIMD gradual batch limit vs static Nagle (mean latency, µs)\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} | {:>12}",
        "rate", "off", "on", "aimd", "mean limit B"
    );
    for rate in [10_000.0, 40_000.0, 70_000.0, 85_000.0, 95_000.0] {
        let mk = |nagle| RunConfig {
            warmup: Nanos::from_millis(200),
            measure: Nanos::from_millis(600),
            ..RunConfig::new(WorkloadSpec::fig4a(rate), nagle)
        };
        let off = run_point(&mk(NagleSetting::Off));
        let on = run_point(&mk(NagleSetting::On));
        let aimd = run_point(&mk(NagleSetting::AimdLimit {
            objective: Objective::MinLatency,
        }));
        let us = |o: Option<Nanos>| o.map(|n| n.as_micros_f64()).unwrap_or(f64::NAN);
        println!(
            "{:>8.0} | {:>10.1} {:>10.1} {:>10.1} | {:>12.0}",
            rate,
            us(off.measured_mean),
            us(on.measured_mean),
            us(aimd.measured_mean),
            aimd.aimd_mean_limit.unwrap_or(f64::NAN),
        );
    }
    println!("\nAIMD adapts a byte threshold (1 B … 64 KiB) by additive increase on");
    println!("improvement and multiplicative decrease on regression — the paper's");
    println!("congestion-control-style alternative to on/off toggling.");
}
