//! Knobs: the multi-knob control plane against the static knob cube.
//!
//! For each client per-response cost `c` and fan-in width `N`, runs all
//! eight static corners of (Nagle × delayed-ACK × cork-limit), the
//! Nagle-only adaptive plane (the paper's single-knob policy), and the
//! joint adaptive plane driving all three knobs from one routed
//! estimate. Reports the joint plane's P99 against the best static
//! corner — the omniscient operator's pick for that cell.
//!
//! ```sh
//! cargo run --release --example knobs            # full grid + knobs.json
//! cargo run --release --example knobs -- --smoke # quick CI gate
//! ```

use e2e_apps::experiments::{
    knobs, KnobsCell, KnobsData, KNOBS_BOUND_FACTOR as BOUND_FACTOR,
    KNOBS_BOUND_SLACK as BOUND_SLACK,
};
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn print_cells(data: &KnobsData) {
    println!(
        "{:>6} {:>3} | {:>9} {:>18} | {:>9} {:>9} {:>6} | {:>5} {:>5} {:>5} {:>5}",
        "c-us",
        "N",
        "best-p99",
        "best-corner",
        "1knob-p99",
        "joint-p99",
        "ratio",
        "nag",
        "dack",
        "cork",
        "expl"
    );
    println!("{}", "-".repeat(104));
    for c in &data.cells {
        println!(
            "{:>6.1} {:>3} | {:>9} {:>18} | {:>9} {:>9} {:>6} | {:>5} {:>5} {:>5} {:>5}",
            c.client_cost.as_micros_f64(),
            c.num_clients,
            us(c.best_corner_p99()),
            c.best_corner_label().unwrap_or_else(|| "n/a".into()),
            us(c.nagle_only.measured_p99),
            us(c.joint.measured_p99),
            c.regression()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            c.joint.plane_nagle_switches.unwrap_or(0),
            c.joint.plane_delack_switches.unwrap_or(0),
            c.joint.plane_cork_switches.unwrap_or(0),
            c.joint.plane_explorations.unwrap_or(0),
        );
    }
}

fn check_cell(c: &KnobsCell) {
    for corner in &c.corners {
        assert!(
            corner.result.samples > 0,
            "c={}/N={} corner {}: no samples",
            c.client_cost,
            c.num_clients,
            corner.label()
        );
    }
    assert!(
        c.within_bound(BOUND_FACTOR, BOUND_SLACK),
        "c={}/N={}: joint p99 {:?} exceeds {BOUND_FACTOR}x best corner {:?} + {BOUND_SLACK}",
        c.client_cost,
        c.num_clients,
        c.joint.measured_p99,
        c.best_corner_p99()
    );
    // The plane must actually have been live on every knob.
    assert!(c.joint.plane_nagle_switches.is_some());
    assert!(
        c.joint.plane_explorations.unwrap_or(0) > 0,
        "c={}/N={}: the joint plane never explored",
        c.client_cost,
        c.num_clients
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (costs, ns, rate, warmup, measure) = if smoke {
        (
            vec![Nanos::from_micros(4)],
            vec![8usize],
            24_000.0,
            Nanos::from_millis(50),
            Nanos::from_millis(150),
        )
    } else {
        (
            vec![
                Nanos::from_nanos(300),
                Nanos::from_micros(4),
                Nanos::from_micros(12),
            ],
            vec![1usize, 4, 8],
            24_000.0,
            Nanos::from_millis(200),
            Nanos::from_millis(600),
        )
    };

    let data = knobs(&costs, &ns, rate, warmup, measure, 0xBE7C);
    print_cells(&data);
    println!(
        "\nworst joint-vs-best-corner P99 ratio: {}",
        data.worst_regression()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "n/a".into())
    );

    if smoke {
        for c in &data.cells {
            check_cell(c);
        }
        println!("knobs smoke: OK (c=4us, N=8, joint plane within bound)");
    } else {
        // The headline claim: on the hardest cell (highest c and N —
        // where the Nagle/delayed-ACK interaction bites), the joint
        // plane must strictly beat the Nagle-only plane.
        let high = data.high_cell().expect("non-empty grid");
        assert!(
            high.joint_beats_nagle_only(),
            "high cell c={}/N={}: joint {:?} does not beat nagle-only {:?}",
            high.client_cost,
            high.num_clients,
            high.joint.measured_p99,
            high.nagle_only.measured_p99
        );
        std::fs::write("knobs.json", to_json(&data)).expect("write knobs.json");
        println!("full grid written to knobs.json");
    }
}

/// Hand-rolled JSON (the workspace has no registry dependencies): one
/// object per cell with every corner's P99, the two adaptive P99s, the
/// regression ratio, and the joint plane's per-knob counters.
fn to_json(data: &KnobsData) -> String {
    fn us(v: Option<Nanos>) -> String {
        v.map(|n| format!("{:.1}", n.as_micros_f64()))
            .unwrap_or_else(|| "null".into())
    }
    let rows: Vec<String> = data
        .cells
        .iter()
        .map(|c| {
            let corners: Vec<String> = c
                .corners
                .iter()
                .map(|k| format!("\"{}\": {}", k.label(), us(k.result.measured_p99)))
                .collect();
            format!(
                concat!(
                    "    {{\"client_cost_us\": {:.1}, \"num_clients\": {}, ",
                    "\"corners\": {{{}}}, \"best_corner\": \"{}\", ",
                    "\"best_corner_p99_us\": {}, \"nagle_only_p99_us\": {}, ",
                    "\"joint_p99_us\": {}, \"regression\": {}, ",
                    "\"plane\": {{\"nagle_switches\": {}, \"delack_switches\": {}, ",
                    "\"cork_switches\": {}, \"explorations\": {}, \"cork_limit\": {}}}}}"
                ),
                c.client_cost.as_micros_f64(),
                c.num_clients,
                corners.join(", "),
                c.best_corner_label().unwrap_or_else(|| "n/a".into()),
                us(c.best_corner_p99()),
                us(c.nagle_only.measured_p99),
                us(c.joint.measured_p99),
                c.regression()
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "null".into()),
                c.joint.plane_nagle_switches.unwrap_or(0),
                c.joint.plane_delack_switches.unwrap_or(0),
                c.joint.plane_cork_switches.unwrap_or(0),
                c.joint.plane_explorations.unwrap_or(0),
                c.joint
                    .plane_cork_limit
                    .map(|l| l.to_string())
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    format!(
        "{{\n  \"version\": 1,\n  \"experiment\": \"knobs\",\n  \"bound_factor\": {BOUND_FACTOR},\n  \
         \"bound_slack_us\": {:.1},\n  \"count\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        BOUND_SLACK.as_micros_f64(),
        rows.len(),
        rows.join(",\n")
    )
}
