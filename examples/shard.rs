//! Shard: the two-tier datacenter topology under skewed load.
//!
//! For each aggregate rate, runs three two-tier (N clients → proxy → K
//! shards) cells: every upstream pinned `TCP_NODELAY`, every upstream
//! pinned Nagle-on, and the per-shard adaptive planes fed composed
//! client→proxy + proxy→shard estimates. The workload concentrates most
//! of the traffic on one hot shard, so no single global pin is right for
//! every upstream — the cell reports whether the composed estimates rank
//! the hot shard first and whether the per-shard planes beat both pins.
//!
//! ```sh
//! cargo run --release --example shard            # full grid + shard.json
//! cargo run --release --example shard -- --smoke # quick CI gate
//! ```

use e2e_apps::experiments::{
    shard, ShardCell, ShardData, SHARD_BOUND_FACTOR, SHARD_BOUND_SLACK, SHARD_HOT_RANK_MIN,
};
use e2e_apps::ShardPointResult;
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn pct(f: Option<f64>) -> String {
    f.map(|v| format!("{:.0}%", v * 100.0))
        .unwrap_or_else(|| "n/a".into())
}

fn print_cells(data: &ShardData) {
    println!(
        "{:>8} | {:>9} {:>9} {:>9} | {:>6} | {:>8} {:>8} | {:>16}",
        "rate", "off-p99", "on-p99", "adap-p99", "ratio", "hot-rank", "pxy-cpu", "on-frac/shard"
    );
    println!("{}", "-".repeat(92));
    for c in &data.cells {
        let fracs: Vec<String> = c
            .adaptive
            .shard_on_fraction
            .iter()
            .enumerate()
            .map(|(s, f)| {
                let tag = if s == c.adaptive.hot_shard { "*" } else { "" };
                format!("{tag}{:.2}", f)
            })
            .collect();
        println!(
            "{:>8.0} | {:>9} {:>9} {:>9} | {:>6} | {:>8} {:>8.2} | {:>16}",
            c.rate_rps,
            us(c.off.measured_p99),
            us(c.on.measured_p99),
            us(c.adaptive.measured_p99),
            c.regression()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            pct(c.off.hot_rank_fraction),
            c.off.proxy_cpu.app,
            fracs.join(" "),
        );
    }
}

fn check_cell(c: &ShardCell) {
    for (label, r) in [("off", &c.off), ("on", &c.on), ("adaptive", &c.adaptive)] {
        assert!(
            r.samples > 0,
            "rate {}: {label} arm recorded no samples",
            c.rate_rps
        );
        assert!(
            r.per_shard_requests.iter().all(|&n| n > 0),
            "rate {}: {label} arm left a shard idle: {:?}",
            c.rate_rps,
            r.per_shard_requests
        );
        // Skew reached the wire: the hot shard carried the most requests.
        let busiest = r
            .per_shard_requests
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(s, _)| s)
            .unwrap();
        assert_eq!(
            busiest, r.hot_shard,
            "rate {}: {label} arm routed most traffic to shard {busiest}, expected hot {}",
            c.rate_rps, r.hot_shard
        );
    }
    // The composed per-shard estimates exist for every shard.
    assert!(
        c.adaptive.shard_estimates.iter().all(|e| e.is_some()),
        "rate {}: missing per-shard estimates",
        c.rate_rps
    );
    // Adaptive never degrades past the bound, at any rate.
    assert!(
        c.within_bound(SHARD_BOUND_FACTOR, SHARD_BOUND_SLACK),
        "rate {}: adaptive {:?} exceeded {SHARD_BOUND_FACTOR}x best corner {:?} + {:?}",
        c.rate_rps,
        c.adaptive.measured_p99,
        c.best_corner_p99(),
        SHARD_BOUND_SLACK
    );
}

/// The headline claims, checked on the saturated top-rate cell: the
/// composed estimates on the unadapted run single out the hot shard, and
/// the per-shard planes strictly beat whichever global pin an operator
/// would have chosen.
fn check_headline(c: &ShardCell) {
    let rank = c.off.hot_rank_fraction.expect("off arm ranked no windows");
    assert!(
        rank >= SHARD_HOT_RANK_MIN,
        "rate {}: estimate ranked hot shard first in only {:.0}% of windows",
        c.rate_rps,
        rank * 100.0
    );
    let ratio = c.regression().expect("missing P99s");
    assert!(
        ratio < 1.0,
        "rate {}: adaptive P99 {:?} did not beat best corner {:?}",
        c.rate_rps,
        c.adaptive.measured_p99,
        c.best_corner_p99()
    );
    // The win is per-shard, not a lucky global flip: the hot upstream's
    // plane settled on batching while at least one cold plane did not.
    let hot_frac = c.adaptive.shard_on_fraction[c.adaptive.hot_shard];
    let min_cold = c
        .adaptive
        .shard_on_fraction
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != c.adaptive.hot_shard)
        .map(|(_, f)| *f)
        .fold(f64::INFINITY, f64::min);
    assert!(
        hot_frac > 0.8 && min_cold < 0.6,
        "rate {}: planes did not diverge (hot on-fraction {hot_frac:.2}, coldest {min_cold:.2})",
        c.rate_rps
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, warmup, measure) = if smoke {
        (
            vec![60_000.0],
            Nanos::from_millis(50),
            Nanos::from_millis(150),
        )
    } else {
        (
            vec![30_000.0, 60_000.0, 90_000.0],
            Nanos::from_millis(200),
            Nanos::from_millis(600),
        )
    };

    let data = shard(&rates, 8, 4, 0.7, warmup, measure, 0x5AAD);
    print_cells(&data);

    for c in &data.cells {
        check_cell(c);
    }
    if smoke {
        println!("shard smoke: OK (N=8, K=4, skewed cell served on both legs)");
    } else {
        check_headline(data.cells.last().expect("empty grid"));
        std::fs::write("shard.json", to_json(&data)).expect("write shard.json");
        println!("full grid written to shard.json");
    }
}

fn point_json(r: &ShardPointResult) -> String {
    let est: Vec<String> = r
        .shard_estimates
        .iter()
        .map(|e| {
            e.map(|n| format!("{:.1}", n.as_micros_f64()))
                .unwrap_or_else(|| "null".into())
        })
        .collect();
    format!(
        concat!(
            "{{\"p99_us\": {}, \"mean_us\": {}, \"achieved_rps\": {:.0}, ",
            "\"hot_shard\": {}, \"per_shard_requests\": {:?}, ",
            "\"shard_estimates_us\": [{}], \"hot_rank_fraction\": {}, ",
            "\"shard_on_fraction\": {:?}, \"proxy_cpu_app\": {:.3}}}"
        ),
        us(r.measured_p99).replace("n/a", "null"),
        us(r.measured_mean).replace("n/a", "null"),
        r.achieved_rps,
        r.hot_shard,
        r.per_shard_requests,
        est.join(", "),
        r.hot_rank_fraction
            .map(|f| format!("{f:.3}"))
            .unwrap_or_else(|| "null".into()),
        r.shard_on_fraction,
        r.proxy_cpu.app,
    )
}

fn to_json(data: &ShardData) -> String {
    let rows: Vec<String> = data
        .cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"rate_rps\": {:.0}, \"off\": {}, \"on\": {}, \"adaptive\": {}, \"regression\": {}}}",
                c.rate_rps,
                point_json(&c.off),
                point_json(&c.on),
                point_json(&c.adaptive),
                c.regression()
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    format!(
        "{{\n  \"version\": 1,\n  \"experiment\": \"shard\",\n  \"count\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        rows.len(),
        rows.join(",\n")
    )
}
