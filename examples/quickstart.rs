//! Quickstart: estimate end-to-end latency of a simulated Redis workload.
//!
//! Runs one experiment point — a Lancet-style client issuing 16 KiB SETs
//! at 40 kRPS against a Redis-like server over the simulated TCP stack —
//! and prints measured latency next to every estimator the paper
//! describes: byte-, packet-, and message-unit Little's-law estimates plus
//! the application-hint estimate.
//!
//! ```sh
//! cargo run --release --example quickstart [rate_rps]
//! ```

use e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use littles::Nanos;

fn fmt(n: Option<Nanos>) -> String {
    n.map(|v| v.to_string()).unwrap_or_else(|| "n/a".into())
}

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rate in requests/second"))
        .unwrap_or(40_000.0);

    println!("workload: 16 B keys, 16 KiB SET values, {rate:.0} req/s (open loop)");
    println!("stack: simulated TCP, Nagle toggled per run; 100 Gbps link\n");

    for (label, nagle) in [
        ("TCP_NODELAY (Redis default)", NagleSetting::Off),
        ("Nagle enabled", NagleSetting::On),
    ] {
        let cfg = RunConfig::new(WorkloadSpec::fig4a(rate), nagle);
        let r = run_point(&cfg);
        println!("== {label}");
        println!("   measured mean latency  {}", fmt(r.measured_mean));
        println!("   measured p99           {}", fmt(r.measured_p99));
        println!("   estimate (bytes)       {}", fmt(r.estimated_bytes));
        println!("   estimate (messages)    {}", fmt(r.estimated_messages));
        println!("   estimate (hints §3.3)  {}", fmt(r.estimated_hint));
        println!("   achieved               {:.0} resp/s", r.achieved_rps);
        println!(
            "   server cpu             app {:.0}% / softirq {:.0}%",
            r.server_cpu.app * 100.0,
            r.server_cpu.softirq * 100.0
        );
        println!(
            "   wire packets           {} to server, {} to client\n",
            r.packets_to_server, r.packets_to_client
        );
    }
    println!("Estimates come from 36-byte TCP-option metadata exchanges (paper §3.2);");
    println!("compare them to the measured column — then try other rates.");
}
