//! Adversary: adversarial metadata faults with peer-state validation.
//!
//! For each adversarial fault class (exchange-payload corruption,
//! endpoint restart) at each intensity and fan-in width, runs the two
//! static Nagle baselines plus two otherwise identical adaptive arms —
//! guarded (validation on) and exposed (validation off) — and reports
//! both against the static oracle. The guarded arm must stay within the
//! chaos degradation bound; the exposed arm demonstrates why: without
//! validation, garbled or restart-spanning windows poison the estimate
//! the policy acts on.
//!
//! ```sh
//! cargo run --release --example adversary            # full grid + adversary.json
//! cargo run --release --example adversary -- --smoke # quick CI gate
//! ```

use e2e_apps::experiments::{
    adversary, AdversaryCell, AdversaryClass, AdversaryData, CHAOS_BOUND_FACTOR as BOUND_FACTOR,
    CHAOS_BOUND_SLACK as BOUND_SLACK,
};
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn ratio(r: Option<f64>) -> String {
    r.map(|r| format!("{r:.2}")).unwrap_or_else(|| "n/a".into())
}

fn print_cells(data: &AdversaryData) {
    println!(
        "{:>3} {:>8} {:>5} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>6} {:>6} | {:>7} {:>6} {:>5}",
        "N",
        "class",
        "int",
        "off-p99",
        "on-p99",
        "guard-p99",
        "expo-p99",
        "oracle",
        "g-rat",
        "e-rat",
        "rejects",
        "epochs",
        "trips"
    );
    println!("{}", "-".repeat(116));
    for c in &data.cells {
        let v = c.guarded.validation.unwrap_or_default();
        println!(
            "{:>3} {:>8} {:>5.2} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>6} {:>6} | {:>7} {:>6} {:>5}",
            c.num_clients,
            c.class.name(),
            c.intensity,
            us(c.off.measured_p99),
            us(c.on.measured_p99),
            us(c.guarded.measured_p99),
            us(c.exposed.measured_p99),
            us(c.oracle_p99()),
            ratio(c.regression()),
            ratio(c.exposed_regression()),
            v.rejected,
            v.epoch_changes,
            c.guarded.client_breaker_trips.unwrap_or(0)
                + c.guarded.server_breaker_trips.unwrap_or(0),
        );
    }
}

/// Extra slack for the smoke gate only. The 150 ms smoke window holds
/// just a handful of restart/recovery cycles, so the guarded P99 lands
/// inside the recovery transient instead of averaging over it the way
/// the 600 ms full grid does; the wider slack absorbs that sampling
/// noise without loosening the full-grid bound.
const SMOKE_EXTRA_SLACK: Nanos = Nanos::from_micros(300);

fn check_cell(c: &AdversaryCell, slack: Nanos) {
    let tag = format!("{}/{:.2}/N={}", c.class.name(), c.intensity, c.num_clients);
    for (label, p) in [
        ("off", &c.off),
        ("on", &c.on),
        ("guarded", &c.guarded),
        ("exposed", &c.exposed),
    ] {
        assert!(
            p.samples > 0,
            "{tag} [{label}]: no samples survived the faults"
        );
    }
    // The fault layer must actually have hit the metadata path — an
    // adversary run where nothing was garbled or restarted gates nothing.
    match c.class {
        AdversaryClass::Corrupt => {
            let corrupted: u64 = c.guarded.link_faults.iter().map(|f| f.corruptions).sum();
            assert!(corrupted > 0, "{tag}: no exchange was ever corrupted");
            let v = c.guarded.validation.expect("guarded arm validates");
            assert!(
                v.rejected > 0,
                "{tag}: corruption fired {corrupted} times but the validator rejected nothing"
            );
        }
        AdversaryClass::Restart => {
            assert!(
                c.guarded.fault_restarts > 0,
                "{tag}: no restart was ever injected"
            );
            assert!(
                c.guarded.client_restarts > 0,
                "{tag}: clients never observed a restart"
            );
            let v = c.guarded.validation.expect("guarded arm validates");
            assert!(
                v.epoch_changes > 0,
                "{tag}: restarts fired but no epoch change was detected"
            );
            // Recovery, not just survival: the guarded arm must keep
            // serving a solid majority of the offered load across every
            // die/reconnect/resync cycle.
            assert!(
                c.guarded.achieved_rps > 0.5 * c.guarded.offered_rps,
                "{tag}: guarded arm served only {:.0}/{:.0} rps across restarts",
                c.guarded.achieved_rps,
                c.guarded.offered_rps
            );
        }
    }
    assert!(
        c.within_bound(BOUND_FACTOR, slack),
        "{tag}: guarded p99 {:?} exceeds {BOUND_FACTOR}x oracle {:?} + {slack}",
        c.guarded.measured_p99,
        c.oracle_p99()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (classes, intensities, ns, rate, warmup, measure) = if smoke {
        (
            AdversaryClass::ALL.to_vec(),
            vec![1.0],
            vec![1usize],
            95_000.0,
            Nanos::from_millis(50),
            Nanos::from_millis(150),
        )
    } else {
        (
            AdversaryClass::ALL.to_vec(),
            vec![0.5, 1.0],
            vec![1usize, 2],
            95_000.0,
            Nanos::from_millis(200),
            Nanos::from_millis(600),
        )
    };

    let data = adversary(&classes, &intensities, &ns, rate, warmup, measure, 0xC405);
    print_cells(&data);
    println!(
        "\nworst guarded-vs-oracle P99 ratio: {}",
        ratio(data.worst_regression())
    );

    if smoke {
        let slack = BOUND_SLACK + SMOKE_EXTRA_SLACK;
        for c in &data.cells {
            check_cell(c, slack);
        }
        // Validation must be load-bearing on this grid: at least one
        // exposed arm (same policy, validator off) must break the bound
        // the guarded arms all satisfy.
        assert!(
            data.poisoning_demonstrated(BOUND_FACTOR, slack),
            "every exposed arm stayed within the bound — validation is not load-bearing here"
        );
        println!("adversary smoke: OK (corrupt + restart, N=1, validation load-bearing)");
    } else {
        std::fs::write("adversary.json", to_json(&data)).expect("write adversary.json");
        println!("full grid written to adversary.json");
    }
}

/// Hand-rolled JSON (the workspace has no registry dependencies): one
/// object per cell with all four P99s, both oracle ratios, the guarded
/// arm's validation counters, and the restart/corruption tallies.
fn to_json(data: &AdversaryData) -> String {
    fn us(v: Option<Nanos>) -> String {
        v.map(|n| format!("{:.1}", n.as_micros_f64()))
            .unwrap_or_else(|| "null".into())
    }
    fn num(v: Option<f64>) -> String {
        v.map(|r| format!("{r:.3}")).unwrap_or_else(|| "null".into())
    }
    let rows: Vec<String> = data
        .cells
        .iter()
        .map(|c| {
            let v = c.guarded.validation.unwrap_or_default();
            let corrupted: u64 = c.guarded.link_faults.iter().map(|f| f.corruptions).sum();
            format!(
                concat!(
                    "    {{\"class\": \"{}\", \"intensity\": {}, \"num_clients\": {}, ",
                    "\"off_p99_us\": {}, \"on_p99_us\": {}, ",
                    "\"guarded_p99_us\": {}, \"exposed_p99_us\": {}, ",
                    "\"oracle_p99_us\": {}, \"regression\": {}, \"exposed_regression\": {}, ",
                    "\"breaker_trips\": {}, \"corruptions\": {}, \"restarts\": {}, ",
                    "\"validation\": {{\"accepted\": {}, \"rejected\": {}, ",
                    "\"epoch_changes\": {}}}}}"
                ),
                c.class.name(),
                c.intensity,
                c.num_clients,
                us(c.off.measured_p99),
                us(c.on.measured_p99),
                us(c.guarded.measured_p99),
                us(c.exposed.measured_p99),
                us(c.oracle_p99()),
                num(c.regression()),
                num(c.exposed_regression()),
                c.guarded.client_breaker_trips.unwrap_or(0)
                    + c.guarded.server_breaker_trips.unwrap_or(0),
                corrupted,
                c.guarded.fault_restarts,
                v.accepted,
                v.rejected,
                v.epoch_changes,
            )
        })
        .collect();
    format!(
        "{{\n  \"version\": 1,\n  \"experiment\": \"adversary\",\n  \"bound_factor\": {BOUND_FACTOR},\n  \
         \"bound_slack_us\": {:.1},\n  \"count\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        BOUND_SLACK.as_micros_f64(),
        rows.len(),
        rows.join(",\n")
    )
}
