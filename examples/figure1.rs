//! Figure 1: the analytical on/off batching model.
//!
//! Reproduces the paper's motivating example exactly: n = 3 requests
//! queued at the server, per-request cost α = 2, per-batch cost β = 4, and
//! a client-side processing cost c that the server cannot observe. As c
//! grows from 1 to 5 the optimal decision flips — with the server-side
//! activity identical throughout.
//!
//! ```sh
//! cargo run --example figure1
//! ```

use batchpolicy::{figure1_model, Figure1Params};

fn main() {
    println!("Figure 1 — n = 3, α = 2, β = 4 (model time units)\n");
    println!(
        "{:>3} | {:>12} {:>12} | {:>12} {:>12} | outcome",
        "c", "batch lat", "nobatch lat", "batch tput", "nobatch tput"
    );
    println!("{}", "-".repeat(78));
    for c in 0..=6 {
        let out = figure1_model(Figure1Params::paper(c as f64));
        let outcome = match (
            out.batching_improves_latency(),
            out.batching_improves_throughput(),
        ) {
            (true, true) => "batching improves BOTH (Fig 1a)",
            (false, true) => "throughput up, latency down (Fig 1c)",
            (false, false) => "batching degrades BOTH (Fig 1b)",
            (true, false) => "latency up, throughput down",
        };
        println!(
            "{:>3} | {:>12.2} {:>12.2} | {:>12.4} {:>12.4} | {}",
            c,
            out.batched.avg_latency,
            out.unbatched.avg_latency,
            out.batched.throughput,
            out.unbatched.throughput,
            outcome
        );
    }
    println!(
        "\nThe server's timeline is identical in every row — only the client's c\n\
         differs, which is why the sender cannot decide alone (paper §2)."
    );
}
