//! Chaos: fault injection across the star topology with graceful
//! estimator/policy degradation.
//!
//! For each fault class (bursty loss, reorder, duplication, jitter,
//! blackout, server stall) at each intensity and fan-in width, runs the
//! two static Nagle baselines and the adaptive policy (ε-greedy dynamic
//! toggling behind a circuit breaker, estimator confidence driven by
//! snapshot staleness) and reports the adaptive P99 against the static
//! oracle — the better of the two static modes for that cell.
//!
//! ```sh
//! cargo run --release --example chaos            # full grid + chaos.json
//! cargo run --release --example chaos -- --smoke # quick CI gate
//! ```

use e2e_apps::experiments::{
    chaos, ChaosCell, ChaosClass, ChaosData, CHAOS_BOUND_FACTOR as BOUND_FACTOR,
    CHAOS_BOUND_SLACK as BOUND_SLACK,
};
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn print_cells(data: &ChaosData) {
    println!(
        "{:>3} {:>12} {:>5} | {:>9} {:>9} {:>9} | {:>9} {:>6} | {:>5} {:>6}",
        "N", "class", "int", "off-p99", "on-p99", "adap-p99", "oracle", "ratio", "trips", "faults"
    );
    println!("{}", "-".repeat(100));
    for c in &data.cells {
        let faults: u64 = c.adaptive.link_faults.iter().map(|f| f.total()).sum();
        println!(
            "{:>3} {:>12} {:>5.2} | {:>9} {:>9} {:>9} | {:>9} {:>6} | {:>5} {:>6}",
            c.num_clients,
            c.class.name(),
            c.intensity,
            us(c.off.measured_p99),
            us(c.on.measured_p99),
            us(c.adaptive.measured_p99),
            us(c.oracle_p99()),
            c.regression()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            c.adaptive.client_breaker_trips.unwrap_or(0)
                + c.adaptive.server_breaker_trips.unwrap_or(0),
            faults,
        );
    }
}

fn check_cell(c: &ChaosCell) {
    for (label, p) in [("off", &c.off), ("on", &c.on), ("adaptive", &c.adaptive)] {
        assert!(
            p.samples > 0,
            "{}/{:.2}/N={} [{label}]: no samples survived the faults",
            c.class.name(),
            c.intensity,
            c.num_clients
        );
    }
    // The fault layer must actually have fired for this cell — a chaos
    // run where nothing went wrong gates nothing.
    let injected: u64 = c.adaptive.link_faults.iter().map(|f| f.total()).sum();
    let stalled = c.class == ChaosClass::ServerStall || c.class == ChaosClass::Jitter;
    assert!(
        injected > 0 || stalled || !c.adaptive.fault_blackout_time.is_zero(),
        "{}/{:.2}: fault class never fired",
        c.class.name(),
        c.intensity
    );
    assert!(
        c.within_bound(BOUND_FACTOR, BOUND_SLACK),
        "{}/{:.2}/N={}: adaptive p99 {:?} exceeds {BOUND_FACTOR}x oracle {:?} + {BOUND_SLACK}",
        c.class.name(),
        c.intensity,
        c.num_clients,
        c.adaptive.measured_p99,
        c.oracle_p99()
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (classes, intensities, ns, rate, warmup, measure) = if smoke {
        (
            vec![ChaosClass::Loss, ChaosClass::Blackout],
            vec![1.0],
            vec![4usize],
            40_000.0,
            Nanos::from_millis(50),
            Nanos::from_millis(150),
        )
    } else {
        (
            ChaosClass::ALL.to_vec(),
            vec![0.25, 0.5, 1.0],
            vec![4usize, 8],
            24_000.0,
            Nanos::from_millis(200),
            Nanos::from_millis(600),
        )
    };

    let data = chaos(&classes, &intensities, &ns, rate, warmup, measure, 0xC405);
    print_cells(&data);
    println!(
        "\nworst adaptive-vs-oracle P99 ratio: {}",
        data.worst_regression()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "n/a".into())
    );

    if smoke {
        for c in &data.cells {
            check_cell(c);
        }
        // Loss must have dropped packets; the blackout must have darkened
        // the links for a measurable time.
        let loss = data
            .cells
            .iter()
            .find(|c| c.class == ChaosClass::Loss)
            .expect("loss cell");
        let drops: u64 = loss.off.link_faults.iter().map(|f| f.drops).sum();
        assert!(drops > 0, "loss cell dropped nothing");
        let blackout = data
            .cells
            .iter()
            .find(|c| c.class == ChaosClass::Blackout)
            .expect("blackout cell");
        assert!(!blackout.off.fault_blackout_time.is_zero());
        let dark_drops: u64 = blackout
            .off
            .link_faults
            .iter()
            .map(|f| f.blackout_drops)
            .sum();
        assert!(dark_drops > 0, "blackout windows dropped nothing");
        // The adaptive stack must actually have been live.
        for c in &data.cells {
            assert!(c.adaptive.client_on_fraction.is_some());
            assert!(c.adaptive.client_breaker_trips.is_some());
            assert!(c.adaptive.server_breaker_trips.is_some());
        }
        println!("chaos smoke: OK (loss + blackout, N=4, bounded degradation)");
    } else {
        std::fs::write("chaos.json", to_json(&data)).expect("write chaos.json");
        println!("full grid written to chaos.json");
    }
}

/// Hand-rolled JSON (the workspace has no registry dependencies): one
/// object per cell with the three P99s, the oracle ratio, breaker trips,
/// and the per-link fault counters summed over links.
fn to_json(data: &ChaosData) -> String {
    fn us(v: Option<Nanos>) -> String {
        v.map(|n| format!("{:.1}", n.as_micros_f64()))
            .unwrap_or_else(|| "null".into())
    }
    let rows: Vec<String> = data
        .cells
        .iter()
        .map(|c| {
            let f = c
                .adaptive
                .link_faults
                .iter()
                .fold(simnet::FaultCounters::default(), |acc, x| acc.merged(*x));
            format!(
                concat!(
                    "    {{\"class\": \"{}\", \"intensity\": {}, \"num_clients\": {}, ",
                    "\"off_p99_us\": {}, \"on_p99_us\": {}, \"adaptive_p99_us\": {}, ",
                    "\"oracle_p99_us\": {}, \"regression\": {}, ",
                    "\"breaker_trips\": {}, ",
                    "\"faults\": {{\"drops\": {}, \"duplicates\": {}, \"reorders\": {}, ",
                    "\"blackout_drops\": {}, \"blackout_us\": {:.1}}}}}"
                ),
                c.class.name(),
                c.intensity,
                c.num_clients,
                us(c.off.measured_p99),
                us(c.on.measured_p99),
                us(c.adaptive.measured_p99),
                us(c.oracle_p99()),
                c.regression()
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "null".into()),
                c.adaptive.client_breaker_trips.unwrap_or(0)
                    + c.adaptive.server_breaker_trips.unwrap_or(0),
                f.drops,
                f.duplicates,
                f.reorders,
                f.blackout_drops,
                c.adaptive.fault_blackout_time.as_micros_f64(),
            )
        })
        .collect();
    format!(
        "{{\n  \"version\": 1,\n  \"experiment\": \"chaos\",\n  \"bound_factor\": {BOUND_FACTOR},\n  \
         \"bound_slack_us\": {:.1},\n  \"count\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        BOUND_SLACK.as_micros_f64(),
        rows.len(),
        rows.join(",\n")
    )
}
