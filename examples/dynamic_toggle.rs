//! Dynamic Nagle toggling (the paper's §5 proposal, end to end).
//!
//! At each offered load, compares the two static configurations against
//! per-endpoint ε-greedy togglers driven by live end-to-end estimates.
//! The dynamic policy should track — and thanks to per-endpoint asymmetry
//! sometimes beat — the better static setting at every load, which is the
//! paper's core claim.
//!
//! ```sh
//! cargo run --release --example dynamic_toggle
//! ```

use e2e_apps::experiments::dynamic_toggle;
use littles::Nanos;

fn main() {
    let rates = [10_000.0, 30_000.0, 50_000.0, 70_000.0, 80_000.0, 90_000.0, 100_000.0];
    let sweep = dynamic_toggle(
        &rates,
        Nanos::from_millis(200),
        Nanos::from_millis(800),
        0xD74,
    );

    println!("Dynamic on/off toggling vs static (mean latency, µs)\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} | {:>8} {:>8} | winner",
        "rate", "off", "on", "dynamic", "cli-on%", "srv-on%"
    );
    println!("{}", "-".repeat(76));
    for row in &sweep.rows {
        let us = |o: Option<Nanos>| o.map(|n| n.as_micros_f64()).unwrap_or(f64::NAN);
        let dynamic = row.dynamic.as_ref().expect("dynamic included");
        let (off, on, dy) = (
            us(row.off.measured_mean),
            us(row.on.measured_mean),
            us(dynamic.measured_mean),
        );
        let winner = if dy <= off.min(on) {
            "dynamic"
        } else if off < on {
            "static off"
        } else {
            "static on"
        };
        println!(
            "{:>8.0} | {:>10.1} {:>10.1} {:>10.1} | {:>7.0}% {:>7.0}% | {}",
            row.rate_rps,
            off,
            on,
            dy,
            dynamic.client_on_fraction.unwrap_or(0.0) * 100.0,
            dynamic.server_on_fraction.unwrap_or(0.0) * 100.0,
            winner
        );
    }
    println!(
        "\nEach endpoint runs its own ε-greedy bandit over its own estimates, so\n\
         the client and server can settle on different (asymmetric) settings."
    );
}
