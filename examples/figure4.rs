//! Figure 4: measured vs. estimated latency across a load sweep.
//!
//! Regenerates Figure 4a (SET-only) or 4b (95:5 SET:GET), printing per
//! rate the measured mean latency under Nagle off/on next to the
//! byte-unit estimates (the paper's prototype), the message-unit
//! estimates, and the hint-based estimates — then the headline numbers:
//! SLO-sustainable range per configuration, extension factor, and whether
//! the estimated cutoff coincides with the measured one.
//!
//! Writes the full series as JSON for plotting.
//!
//! ```sh
//! cargo run --release --example figure4 -- a      # Figure 4a
//! cargo run --release --example figure4 -- b      # Figure 4b
//! cargo run --release --example figure4 -- a quick  # coarse fast grid
//! ```

use e2e_apps::experiments::{default_rates, figure4a, figure4b, Figure4Data};
use littles::Nanos;

fn fmt_us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "a".into());
    let quick = std::env::args().nth(2).is_some_and(|a| a == "quick");
    let rates = if quick {
        vec![10_000.0, 40_000.0, 70_000.0, 85_000.0, 105_000.0]
    } else {
        default_rates()
    };
    let (warmup, measure) = if quick {
        (Nanos::from_millis(100), Nanos::from_millis(300))
    } else {
        (Nanos::from_millis(200), Nanos::from_millis(800))
    };

    let data: Figure4Data = match variant.as_str() {
        "a" => figure4a(&rates, warmup, measure, 0xF4A),
        "b" => figure4b(&rates, warmup, measure, 0xF4B),
        other => panic!("unknown variant {other:?}; use 'a' or 'b'"),
    };

    println!("Figure 4{variant} — latency (µs) vs offered load\n");
    println!(
        "{:>8} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "rate",
        "off-meas",
        "off-byte",
        "off-msg",
        "off-hint",
        "on-meas",
        "on-byte",
        "on-msg",
        "on-hint"
    );
    println!("{}", "-".repeat(96));
    for row in &data.sweep.rows {
        println!(
            "{:>8.0} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
            row.rate_rps,
            fmt_us(row.off.measured_mean),
            fmt_us(row.off.estimated_bytes),
            fmt_us(row.off.estimated_messages),
            fmt_us(row.off.estimated_hint),
            fmt_us(row.on.measured_mean),
            fmt_us(row.on.estimated_bytes),
            fmt_us(row.on.estimated_messages),
            fmt_us(row.on.estimated_hint),
        );
    }

    println!();
    println!("SLO (500 µs) sustainable:  off = {:?}  on = {:?}  extension = {:.2}x",
        data.sustainable_off,
        data.sustainable_on,
        data.extension_factor.unwrap_or(f64::NAN));
    println!(
        "cutoff (Nagle starts winning): measured = {:?}, byte-estimated = {:?} ({})",
        data.cutoff_measured,
        data.cutoff_estimated,
        if variant == "a" {
            "paper 4a: these coincide"
        } else {
            "paper 4b: these diverge — bytes mislead on mixed sizes"
        }
    );

    let out = format!("figure4{variant}.json");
    std::fs::write(&out, serde_json::to_string_pretty(&data).expect("serialize"))
        .expect("write json");
    println!("\nfull series written to {out}");
}
