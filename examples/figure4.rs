//! Figure 4: measured vs. estimated latency across a load sweep.
//!
//! Regenerates Figure 4a (SET-only) or 4b (95:5 SET:GET), printing per
//! rate the measured mean latency under Nagle off/on next to the
//! byte-unit estimates (the paper's prototype), the message-unit
//! estimates, and the hint-based estimates — then the headline numbers:
//! SLO-sustainable range per configuration, extension factor, and whether
//! the estimated cutoff coincides with the measured one.
//!
//! Writes the full series as JSON for plotting.
//!
//! ```sh
//! cargo run --release --example figure4 -- a      # Figure 4a
//! cargo run --release --example figure4 -- b      # Figure 4b
//! cargo run --release --example figure4 -- a quick  # coarse fast grid
//! ```

use e2e_apps::experiments::{default_rates, figure4a, figure4b, Figure4Data};
use littles::Nanos;

fn fmt_us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "a".into());
    let quick = std::env::args().nth(2).is_some_and(|a| a == "quick");
    let rates = if quick {
        vec![10_000.0, 40_000.0, 70_000.0, 85_000.0, 105_000.0]
    } else {
        default_rates()
    };
    let (warmup, measure) = if quick {
        (Nanos::from_millis(100), Nanos::from_millis(300))
    } else {
        (Nanos::from_millis(200), Nanos::from_millis(800))
    };

    let data: Figure4Data = match variant.as_str() {
        "a" => figure4a(&rates, warmup, measure, 0xF4A),
        "b" => figure4b(&rates, warmup, measure, 0xF4B),
        other => panic!("unknown variant {other:?}; use 'a' or 'b'"),
    };

    println!("Figure 4{variant} — latency (µs) vs offered load\n");
    println!(
        "{:>8} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "rate",
        "off-meas",
        "off-byte",
        "off-msg",
        "off-hint",
        "on-meas",
        "on-byte",
        "on-msg",
        "on-hint"
    );
    println!("{}", "-".repeat(96));
    for row in &data.sweep.rows {
        println!(
            "{:>8.0} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
            row.rate_rps,
            fmt_us(row.off.measured_mean),
            fmt_us(row.off.estimated_bytes),
            fmt_us(row.off.estimated_messages),
            fmt_us(row.off.estimated_hint),
            fmt_us(row.on.measured_mean),
            fmt_us(row.on.estimated_bytes),
            fmt_us(row.on.estimated_messages),
            fmt_us(row.on.estimated_hint),
        );
    }

    println!();
    println!("SLO (500 µs) sustainable:  off = {:?}  on = {:?}  extension = {:.2}x",
        data.sustainable_off,
        data.sustainable_on,
        data.extension_factor.unwrap_or(f64::NAN));
    println!(
        "cutoff (Nagle starts winning): measured = {:?}, byte-estimated = {:?} ({})",
        data.cutoff_measured,
        data.cutoff_estimated,
        if variant == "a" {
            "paper 4a: these coincide"
        } else {
            "paper 4b: these diverge — bytes mislead on mixed sizes"
        }
    );

    let out = format!("figure4{variant}.json");
    std::fs::write(&out, to_json(&data)).expect("write json");
    println!("\nfull series written to {out}");
}

/// Hand-rolled JSON emission (the workspace builds with no registry
/// dependencies, so there is no serde): the plotting fields of
/// [`Figure4Data`], one row object per swept rate.
fn to_json(data: &Figure4Data) -> String {
    fn num(v: Option<f64>) -> String {
        match v {
            Some(x) if x.is_finite() => format!("{x}"),
            _ => "null".into(),
        }
    }
    fn us(v: Option<Nanos>) -> String {
        num(v.map(|n| n.as_micros_f64()))
    }
    let mut rows = Vec::new();
    for row in &data.sweep.rows {
        rows.push(format!(
            concat!(
                "    {{\"rate_rps\": {}, ",
                "\"off\": {{\"measured_us\": {}, \"est_bytes_us\": {}, \"est_messages_us\": {}, \"est_hint_us\": {}}}, ",
                "\"on\": {{\"measured_us\": {}, \"est_bytes_us\": {}, \"est_messages_us\": {}, \"est_hint_us\": {}}}}}"
            ),
            row.rate_rps,
            us(row.off.measured_mean),
            us(row.off.estimated_bytes),
            us(row.off.estimated_messages),
            us(row.off.estimated_hint),
            us(row.on.measured_mean),
            us(row.on.estimated_bytes),
            us(row.on.estimated_messages),
            us(row.on.estimated_hint),
        ));
    }
    format!(
        "{{\n  \"variant\": \"{}\",\n  \"slo_us\": {},\n  \"sustainable_off_rps\": {},\n  \
         \"sustainable_on_rps\": {},\n  \"extension_factor\": {},\n  \"cutoff_measured_rps\": {},\n  \
         \"cutoff_estimated_rps\": {},\n  \"sweep\": {{\"rows\": [\n{}\n  ]}}\n}}\n",
        data.variant,
        data.slo.as_micros_f64(),
        num(data.sustainable_off),
        num(data.sustainable_on),
        num(data.extension_factor),
        num(data.cutoff_measured),
        num(data.cutoff_estimated),
        rows.join(",\n")
    )
}
