//! Fan-in: the same aggregate load spread over N ∈ {1, 4, …, 1024}
//! client connections into one shared server.
//!
//! Shows the two headline effects of the multi-connection topology:
//! the Nagle cutoff moves right (to higher aggregate rates) as N grows
//! — per-connection batching starves at 1/N of the load while the
//! no-Nagle baseline only collapses on the shared server CPU — and the
//! throughput-weighted aggregate estimate keeps identifying the cutoff.
//!
//! ```sh
//! cargo run --release --example fanin            # full N sweep
//! cargo run --release --example fanin -- --smoke # quick N=4 CI check
//! ```

use e2e_apps::experiments::fanin;
use littles::Nanos;

fn us(n: Option<Nanos>) -> String {
    n.map(|v| format!("{:.1}", v.as_micros_f64()))
        .unwrap_or_else(|| "n/a".into())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ns, rates, warmup, measure) = if smoke {
        (
            vec![4usize],
            vec![40_000.0, 80_000.0],
            Nanos::from_millis(50),
            Nanos::from_millis(150),
        )
    } else {
        (
            vec![1usize, 4, 16, 64, 256, 1024],
            vec![
                20_000.0, 40_000.0, 60_000.0, 75_000.0, 88_000.0, 105_000.0,
            ],
            Nanos::from_millis(200),
            Nanos::from_millis(600),
        )
    };

    let data = fanin(&ns, &rates, warmup, measure, 0xFA41);

    for row in &data.rows {
        println!("=== fan-in N = {} ===", row.num_clients);
        println!(
            "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
            "rate", "off-meas", "off-est", "on-meas", "on-est", "achieved"
        );
        for p in &row.sweep.rows {
            println!(
                "{:>8.0} | {:>9} {:>9} | {:>9} {:>9} | {:>8.0}",
                p.rate_rps,
                us(p.off.measured_mean),
                us(p.off.estimated_bytes),
                us(p.on.measured_mean),
                us(p.on.estimated_bytes),
                p.off.achieved_rps,
            );
        }
        println!(
            "cutoff: measured {:?} vs byte-estimated {:?}\n",
            row.cutoff_measured, row.cutoff_estimated
        );
    }

    if smoke {
        // CI gate: the fan-in path must exercise every connection.
        for row in &data.rows {
            for p in &row.sweep.rows {
                for point in [&p.off, &p.on] {
                    assert_eq!(point.num_clients, row.num_clients);
                    assert_eq!(point.per_client.len(), row.num_clients);
                    for (i, c) in point.per_client.iter().enumerate() {
                        assert!(
                            c.samples > 0,
                            "client {i} measured no samples at {} RPS",
                            p.rate_rps
                        );
                    }
                }
            }
        }
        println!("fanin smoke: OK (N=4, all connections carried traffic)");
    } else {
        println!("cutoff shift with N: ");
        for row in &data.rows {
            println!("  N={:>3}: {:?}", row.num_clients, row.cutoff_measured);
        }
    }
}
