//! The cooperative-application hint API (paper §3.3), end to end.
//!
//! A cooperative client wraps its request loop with `create(1)` /
//! `complete(1)` on a [`RequestTracker`] and passes the tracker's queue
//! state to `send` as ancillary data. The stack forwards it to the server
//! inside a TCP option; the server's [`HintEstimator`] then reports the
//! *client-defined* end-to-end latency without monitoring any TCP queue.
//!
//! The example prints the client's own ground truth next to what the
//! server recovered from hints alone — they should agree closely.
//!
//! ```sh
//! cargo run --release --example hints_api
//! ```

use e2e_apps::{run_point, NagleSetting, RunConfig, WorkloadSpec};
use littles::Nanos;

fn main() {
    println!("Cooperative estimation via create()/complete() hints\n");
    println!(
        "{:>8} | {:>16} {:>16} {:>10}",
        "rate", "client truth", "server via hints", "error"
    );
    println!("{}", "-".repeat(58));
    for rate in [10_000.0, 30_000.0, 60_000.0, 80_000.0] {
        let cfg = RunConfig::new(WorkloadSpec::fig4a(rate), NagleSetting::Off);
        let r = run_point(&cfg);
        let truth = r.tracker_mean.expect("tracker ran");
        let hinted = r.estimated_hint.expect("hints exchanged");
        let err = (hinted.as_micros_f64() - truth.as_micros_f64()).abs()
            / truth.as_micros_f64()
            * 100.0;
        println!(
            "{:>8.0} | {:>16} {:>16} {:>9.1}%",
            rate,
            truth.to_string(),
            hinted.to_string(),
            err
        );
    }
    println!(
        "\nThe server never inspected its own queues for these numbers — the\n\
         36-byte hint exchange carries the client's single logical request\n\
         queue, and Little's law does the rest (one division)."
    );
    let _ = Nanos::ZERO; // keep the import obviously used in all cfgs
}
