//! Umbrella crate for the HotOS'25 *Batching with End-to-End Performance
//! Estimation* reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`littles`] — Little's-law queue-state tracking (Algorithms 1–2).
//! * [`simnet`] — the deterministic discrete-event substrate.
//! * [`tcpsim`] — the simulated TCP stack (Nagle, delayed ACKs, corking,
//!   TSO, instrumented queues, metadata exchange).
//! * [`e2e_core`] — the end-to-end estimator and the hint API (the paper's
//!   contribution).
//! * [`batchpolicy`] — dynamic batching policies (ε-greedy toggling, SLO
//!   objectives, AIMD batch limits).
//! * [`e2e_apps`] — the Redis-like server, Lancet-like load generator, and
//!   the experiment harnesses that regenerate every figure.

#![forbid(unsafe_code)]

pub use batchpolicy;
pub use e2e_apps;
pub use e2e_core;
pub use littles;
pub use simnet;
pub use tcpsim;
